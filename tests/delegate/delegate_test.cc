// I/O delegate subsystem tests: request-queue admission control, round-robin
// fairness, OST submission batching, fault retry at the delegate, fail-stop
// delegate crash with shard adoption, determinism, and the churn workload.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/error.h"
#include "delegate/client.h"
#include "delegate/server.h"
#include "delegate/session.h"
#include "fs/filesystem.h"
#include "mpi/runtime.h"
#include "workload/churn.h"

namespace tcio::delegate {
namespace {

constexpr Bytes kSegment = 512;

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 4;
  c.stripe_size = 1024;
  return c;
}

mpi::JobConfig job(int p, std::uint64_t seed = 1) {
  mpi::JobConfig c;
  c.num_ranks = p;
  c.seed = seed;
  return c;
}

core::TcioConfig delegated(int d, std::int64_t capacity = 64) {
  core::TcioConfig cfg;
  cfg.segment_size = kSegment;
  cfg.segments_per_rank = 8;
  cfg.delegate_ranks = d;
  cfg.delegate.queue_capacity = capacity;
  return cfg;
}

std::byte expected(int client, Offset off) {
  return static_cast<std::byte>(
      (static_cast<Offset>(client) * 37 + off * 11) % 251 + 1);
}

std::vector<std::byte> clientBlock(int client, Offset off, Bytes n) {
  std::vector<std::byte> v(static_cast<std::size_t>(n));
  for (Bytes i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = expected(client, off + i);
  }
  return v;
}

std::vector<std::byte> peekBytes(const fs::Filesystem& fsys,
                                 const std::string& name, Offset off,
                                 Bytes n) {
  std::vector<std::byte> v(static_cast<std::size_t>(n));
  fsys.peek(name, off, v);
  return v;
}

/// Runs body on client ranks, serve() on delegates; returns merged stats
/// into *stats on every rank (client-merged, then read back on rank 0 via
/// the session bcast pattern used by the churn workload).
void runSession(mpi::Comm& comm, fs::Filesystem& fsys,
                const core::TcioConfig& cfg,
                const std::function<void(Session&, Channel&)>& body,
                core::TcioDelegateStats* stats = nullptr) {
  Session session(comm, fsys, cfg);
  core::TcioDelegateStats merged;
  if (session.isDelegate()) {
    session.serve();
  } else {
    Channel ch(session);
    body(session, ch);
    merged = session.finish();
  }
  comm.barrier();
  comm.bcast(&merged, sizeof(merged), /*root=*/session.numDelegates());
  if (stats != nullptr) *stats = merged;
}

// -- Core routing and data integrity ------------------------------------------

TEST(DelegateSessionTest, WriteReadCloseRoundTrip) {
  fs::Filesystem fsys(fsCfg());
  core::TcioDelegateStats stats;
  mpi::runJob(job(6), [&](mpi::Comm& comm) {
    const core::TcioConfig cfg = delegated(/*d=*/2);
    runSession(comm, fsys, cfg, [&](Session& s, Channel& ch) {
      const int c = s.clientComm().rank();
      DFile f(ch, "roundtrip.dat", fs::kRead | fs::kWrite | fs::kCreate);
      // Each client writes two blocks straddling a segment boundary.
      const Offset base = static_cast<Offset>(c) * 2 * kSegment + 128;
      const std::vector<std::byte> data = clientBlock(c, base, kSegment);
      f.writeAt(base, data);
      f.flush();
      std::vector<std::byte> back(static_cast<std::size_t>(kSegment));
      f.readAt(base, back);
      EXPECT_EQ(back, data);
      const Bytes size = f.close();
      EXPECT_EQ(size, static_cast<Bytes>(s.numClients() - 1) * 2 * kSegment +
                          128 + kSegment);
    }, &stats);
  });
  // Level-2 ownership really moved: only the delegate ranks talked to the
  // file system.
  std::map<int, std::int64_t> ops = fsys.opsByClient();
  for (const auto& [rank, n] : ops) {
    EXPECT_LT(rank, 2) << "client rank " << rank << " issued FS calls";
    EXPECT_GT(n, 0);
  }
  EXPECT_EQ(ops.size(), 2u);
  EXPECT_GT(stats.submissions, 0);
  // Verify the file bytes out-of-band (costless peek).
  for (int c = 0; c < 4; ++c) {
    const Offset base = static_cast<Offset>(c) * 2 * kSegment + 128;
    const std::vector<std::byte> want = clientBlock(c, base, kSegment);
    EXPECT_EQ(peekBytes(fsys, "roundtrip.dat", base, kSegment), want);
  }
}

TEST(DelegateSessionTest, EnvVariableSelectsDelegates) {
  const char* outer = ::getenv("TCIO_DELEGATES");
  const std::string saved = outer != nullptr ? outer : "";
  ::unsetenv("TCIO_DELEGATES");
  core::TcioConfig cfg;
  EXPECT_EQ(Session::effectiveDelegates(cfg, 8), 0);
  cfg.delegate_ranks = -1;
  ::setenv("TCIO_DELEGATES", "2", 1);
  EXPECT_EQ(Session::effectiveDelegates(cfg, 8), 0);  // opt-out beats env
  ::unsetenv("TCIO_DELEGATES");
  cfg.delegate_ranks = 3;
  EXPECT_EQ(Session::effectiveDelegates(cfg, 8), 3);
  EXPECT_EQ(Session::effectiveDelegates(cfg, 2), 1);  // keep one client
  cfg.delegate_ranks = 0;
  ::setenv("TCIO_DELEGATES", "2", 1);
  EXPECT_EQ(Session::effectiveDelegates(cfg, 8), 2);
  ::setenv("TCIO_DELEGATES", "99", 1);
  EXPECT_EQ(Session::effectiveDelegates(cfg, 128), 64);  // bitmap cap
  ::unsetenv("TCIO_DELEGATES");
  EXPECT_EQ(Session::effectiveDelegates(cfg, 8), 0);
  if (!saved.empty()) ::setenv("TCIO_DELEGATES", saved.c_str(), 1);
}

TEST(DelegateSessionTest, ShardRoutingSkipsTheDead) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(5), [&](mpi::Comm& comm) {
    Session s(comm, fsys, delegated(/*d=*/3));
    EXPECT_EQ(s.naturalOwnerOf(7), 7 % 3);
    EXPECT_EQ(s.ownerOfSegment(7), 7 % 3);
    s.markDead(1);
    EXPECT_EQ(s.ownerOfSegment(7), 2);  // 7 % 3 == 1 is dead -> next live
    EXPECT_EQ(s.adopterOf(1), 2);
    EXPECT_EQ(s.liveDelegates(), (std::vector<int>{0, 2}));
    // Every rank participated in the collective ctor; nothing to serve.
  });
}

// -- Admission control ---------------------------------------------------------

TEST(DelegateQueueTest, BoundedCapacityRejectsAndRetries) {
  fs::Filesystem fsys(fsCfg());
  core::TcioDelegateStats stats;
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    // One delegate with a 4-deep queue; the single client floods 6 puts
    // before finishing any, so at least two hit the watermark and ride the
    // kBusy/backoff path.
    const core::TcioConfig cfg = delegated(/*d=*/1, /*capacity=*/4);
    runSession(comm, fsys, cfg, [&](Session& s, Channel& ch) {
      ch.open("flood.dat", fs::kWrite | fs::kCreate);
      const std::uint64_t key = fileKey("flood.dat");
      std::vector<std::int64_t> seqs;
      std::vector<std::vector<std::byte>> blocks;
      for (int i = 0; i < 6; ++i) {
        const Offset base = static_cast<Offset>(i) * kSegment;
        blocks.push_back(clientBlock(0, base, kSegment));
        seqs.push_back(ch.postPut(
            key, {{i, 0, kSegment}}, blocks.back()));
      }
      for (const std::int64_t seq : seqs) {
        EXPECT_TRUE(ch.finishPut(seq));
      }
      EXPECT_EQ(ch.closeFile(key),
                static_cast<Bytes>(6) * kSegment);
      EXPECT_GT(s.client_busy_retries, 0);
    }, &stats);
  });
  EXPECT_GT(stats.rejections, 0);
  EXPECT_GT(stats.busy_retries, 0);
  EXPECT_EQ(stats.submissions, 6);
  EXPECT_LE(stats.queue_high_watermark, 4);
  // Every rejected put eventually landed: the file is complete.
  for (int i = 0; i < 6; ++i) {
    const Offset base = static_cast<Offset>(i) * kSegment;
    EXPECT_EQ(peekBytes(fsys, "flood.dat", base, kSegment),
              clientBlock(0, base, kSegment));
  }
}

TEST(DelegateQueueTest, RoundRobinKeepsHotClientFromStarvingOthers) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(3), [&](mpi::Comm& comm) {
    // One delegate, two clients. Client A floods four gets; client B posts
    // one slightly later. Round-robin service must interleave B's request
    // instead of finishing A's whole queue first.
    const core::TcioConfig cfg = delegated(/*d=*/1);
    Session session(comm, fsys, cfg);
    SimTime b_done = 0;
    SimTime a_last = 0;
    if (session.isDelegate()) {
      session.serve();
    } else {
      Channel ch(session);
      ch.open("fair.dat", fs::kRead | fs::kWrite | fs::kCreate);
      const std::uint64_t key = fileKey("fair.dat");
      session.clientComm().barrier();
      if (session.clientComm().rank() == 0) {  // hot client A
        std::vector<std::int64_t> seqs;
        for (int i = 0; i < 4; ++i) {
          seqs.push_back(ch.postGet(key, {{i, 0, kSegment}}, kSegment));
        }
        std::vector<std::byte> sink(static_cast<std::size_t>(kSegment));
        for (const std::int64_t seq : seqs) {
          ch.finishGet(seq, sink.data());
        }
        a_last = comm.proc().now();
      } else {  // client B: one request, a touch later
        comm.proc().advance(1.0e-6);
        std::vector<std::byte> sink(static_cast<std::size_t>(kSegment));
        ch.finishGet(ch.postGet(key, {{9, 0, kSegment}}, kSegment),
                     sink.data());
        b_done = comm.proc().now();
      }
      // Share the two timestamps: B must complete before A's queue drains.
      SimTime times[2] = {a_last, b_done};
      session.clientComm().allreduce(times, 2, mpi::ReduceOp::kMax);
      EXPECT_GT(times[0], 0.0);
      EXPECT_GT(times[1], 0.0);
      EXPECT_LT(times[1], times[0])
          << "single-request client finished after the flood";
      ch.closeFile(key);
      session.finish();
    }
    comm.barrier();
  });
}

// -- OST submission batching ---------------------------------------------------

TEST(DelegateBatchTest, AdjacentExtentsCoalesceIntoOneSubmission) {
  fs::Filesystem fsys(fsCfg());
  core::TcioDelegateStats stats;
  constexpr int kChunks = 8;
  constexpr Bytes kChunk = kSegment / kChunks;
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    const core::TcioConfig cfg = delegated(/*d=*/1);
    runSession(comm, fsys, cfg, [&](Session&, Channel& ch) {
      DFile f(ch, "coalesce.dat", fs::kWrite | fs::kCreate);
      // Eight adjacent chunks of one segment, written as separate requests.
      for (int i = 0; i < kChunks; ++i) {
        const Offset off = static_cast<Offset>(i) * kChunk;
        f.writeAt(off, clientBlock(0, off, kChunk));
      }
      EXPECT_EQ(f.close(), kSegment);
    }, &stats);
  });
  EXPECT_EQ(stats.submissions, kChunks);
  EXPECT_EQ(stats.batches, 1) << "adjacent extents must merge to one pwrite";
  EXPECT_EQ(stats.batched_extents, kChunks);
  EXPECT_EQ(peekBytes(fsys, "coalesce.dat", 0, kSegment),
            clientBlock(0, 0, kSegment));
}

// -- Fault injection -----------------------------------------------------------

TEST(DelegateFaultTest, TransientFsFaultsRetryInsideTheDelegate) {
  fs::Filesystem fsys(fsCfg());
  core::TcioDelegateStats stats;
  mpi::runJob(job(4, /*seed=*/7), [&](mpi::Comm& comm) {
    core::TcioConfig cfg = delegated(/*d=*/1);
    cfg.faults.enabled = true;
    cfg.faults.seed = 7;
    cfg.faults.fs_transient_write_rate = 0.4;
    cfg.retry.max_attempts = 8;
    runSession(comm, fsys, cfg, [&](Session& s, Channel& ch) {
      const int c = s.clientComm().rank();
      DFile f(ch, "faulty.dat", fs::kWrite | fs::kCreate);
      for (int b = 0; b < 4; ++b) {
        const Offset off =
            (static_cast<Offset>(c) * 4 + b) * kSegment;
        f.writeAt(off, clientBlock(c, off, kSegment));
      }
      f.close();
    }, &stats);
  });
  EXPECT_GT(stats.fs_transient_faults, 0) << "seed produced no faults";
  EXPECT_GE(stats.fs_retries, stats.fs_transient_faults);
  for (int c = 0; c < 3; ++c) {
    for (int b = 0; b < 4; ++b) {
      const Offset off = (static_cast<Offset>(c) * 4 + b) * kSegment;
      EXPECT_EQ(peekBytes(fsys, "faulty.dat", off, kSegment),
                clientBlock(c, off, kSegment));
    }
  }
}

// -- Fail-stop delegate crash --------------------------------------------------

struct CrashCase {
  CrashPoint point;
  std::int64_t after;
  const char* name;
};

class DelegateCrashTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(DelegateCrashTest, ShardAdoptionLosesNoAcknowledgedByte) {
  const CrashCase& p = GetParam();
  fs::Filesystem fsys(fsCfg());
  core::TcioDelegateStats stats;
  constexpr int kProcs = 6;
  constexpr int kDelegates = 2;
  constexpr int kClients = kProcs - kDelegates;
  constexpr int kBlocks = 4;
  mpi::runJob(job(kProcs, /*seed=*/11), [&](mpi::Comm& comm) {
    core::TcioConfig cfg = delegated(kDelegates);
    cfg.crash.enabled = true;
    cfg.crash.journal = true;
    cfg.crash.liveness_window = 0.25;
    cfg.faults.seed = 11;
    cfg.faults.crashes.push_back({/*rank=*/0, p.point, p.after});
    runSession(comm, fsys, cfg, [&](Session& s, Channel& ch) {
      const int c = s.clientComm().rank();
      DFile f(ch, "adopt.dat", fs::kWrite | fs::kCreate);
      for (int b = 0; b < kBlocks; ++b) {
        const Offset off =
            (static_cast<Offset>(c) * kBlocks + b) * kSegment;
        f.writeAt(off, clientBlock(c, off, kSegment));
      }
      const Bytes size = f.close();
      EXPECT_EQ(size, static_cast<Bytes>(kClients) * kBlocks * kSegment);
    }, &stats);
  });
  EXPECT_EQ(stats.delegates_crashed, 1);
  EXPECT_EQ(stats.shards_adopted, 1);
  // Acked puts were journaled, unacked puts were resubmitted: the file must
  // be byte-identical to a healthy run.
  for (int c = 0; c < kClients; ++c) {
    for (int b = 0; b < kBlocks; ++b) {
      const Offset off = (static_cast<Offset>(c) * kBlocks + b) * kSegment;
      EXPECT_EQ(peekBytes(fsys, "adopt.dat", off, kSegment),
                clientBlock(c, off, kSegment))
          << "lost bytes at client " << c << " block " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Points, DelegateCrashTest,
    ::testing::Values(CrashCase{CrashPoint::kMidJournal, 3, "mid_journal"},
                      CrashCase{CrashPoint::kAtCollective, 5, "at_service"},
                      CrashCase{CrashPoint::kMidClose, 1, "mid_close"}),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      return info.param.name;
    });

TEST(DelegateCrashTest, AdjacentDoubleDeathAdoptsBothShards) {
  // Delegates 0 and 1 both die during the put phase, so one agreement round
  // carries a two-entry verdict. The survivor must mark the whole verdict
  // dead before computing adopters: interleaving mark and adopt would hand
  // delegate 0's shard to the also-dead delegate 1, silently dropping 0's
  // acknowledged (journaled) puts.
  fs::Filesystem fsys(fsCfg());
  core::TcioDelegateStats stats;
  constexpr int kProcs = 6;
  constexpr int kDelegates = 3;
  constexpr int kClients = kProcs - kDelegates;
  constexpr int kBlocks = 4;
  mpi::runJob(job(kProcs, /*seed=*/31), [&](mpi::Comm& comm) {
    core::TcioConfig cfg = delegated(kDelegates);
    cfg.crash.enabled = true;
    cfg.crash.journal = true;
    cfg.crash.liveness_window = 0.25;
    cfg.faults.seed = 31;
    cfg.faults.crashes.push_back({/*rank=*/0, CrashPoint::kMidJournal, 2});
    cfg.faults.crashes.push_back({/*rank=*/1, CrashPoint::kMidJournal, 2});
    runSession(comm, fsys, cfg, [&](Session& s, Channel& ch) {
      const int c = s.clientComm().rank();
      DFile f(ch, "twodead.dat", fs::kWrite | fs::kCreate);
      for (int b = 0; b < kBlocks; ++b) {
        const Offset off = (static_cast<Offset>(c) * kBlocks + b) * kSegment;
        f.writeAt(off, clientBlock(c, off, kSegment));
      }
      f.close();
    }, &stats);
  });
  EXPECT_EQ(stats.delegates_crashed, 2);
  EXPECT_EQ(stats.shards_adopted, 2)
      << "the lone survivor must adopt BOTH dead shards";
  for (int c = 0; c < kClients; ++c) {
    for (int b = 0; b < kBlocks; ++b) {
      const Offset off = (static_cast<Offset>(c) * kBlocks + b) * kSegment;
      EXPECT_EQ(peekBytes(fsys, "twodead.dat", off, kSegment),
                clientBlock(c, off, kSegment))
          << "lost bytes at client " << c << " block " << b;
    }
  }
}

TEST(DelegateCrashTest, AdopterCrashBeforeDrainPreservesTheChain) {
  // Delegate 0 dies mid-put; delegate 1 adopts its shard (journal replay),
  // then itself dies at the start of the close-time drain. Delegate 2 then
  // adopts delegate 1 — and, via the chain scan over the agreed death order,
  // re-adopts delegate 0 from 0's ORIGINAL journal: the dead adopter's WAL
  // (which does carry gen-bumped copies of 0's records) is never the sole
  // carrier of the chain.
  fs::Filesystem fsys(fsCfg());
  core::TcioDelegateStats stats;
  constexpr int kProcs = 6;
  constexpr int kDelegates = 3;
  constexpr int kClients = kProcs - kDelegates;
  constexpr int kBlocks = 4;
  mpi::runJob(job(kProcs, /*seed=*/37), [&](mpi::Comm& comm) {
    core::TcioConfig cfg = delegated(kDelegates);
    cfg.crash.enabled = true;
    cfg.crash.journal = true;
    cfg.crash.liveness_window = 0.25;
    cfg.faults.seed = 37;
    cfg.faults.crashes.push_back({/*rank=*/0, CrashPoint::kMidJournal, 2});
    cfg.faults.crashes.push_back({/*rank=*/1, CrashPoint::kMidClose, 0});
    runSession(comm, fsys, cfg, [&](Session& s, Channel& ch) {
      const int c = s.clientComm().rank();
      DFile f(ch, "chain.dat", fs::kWrite | fs::kCreate);
      for (int b = 0; b < kBlocks; ++b) {
        const Offset off = (static_cast<Offset>(c) * kBlocks + b) * kSegment;
        f.writeAt(off, clientBlock(c, off, kSegment));
      }
      f.close();
    }, &stats);
  });
  EXPECT_EQ(stats.delegates_crashed, 2);
  // Delegate 1's adoption of 0 died with it (fail-stop — its counters never
  // reach the shutdown merge), but the survivor's chain scan adopts both
  // dead shards itself: 1's as a fresh death, 0's as a re-adoption.
  EXPECT_EQ(stats.shards_adopted, 2);
  EXPECT_EQ(stats.shards_readopted, 1);
  for (int c = 0; c < kClients; ++c) {
    for (int b = 0; b < kBlocks; ++b) {
      const Offset off = (static_cast<Offset>(c) * kBlocks + b) * kSegment;
      EXPECT_EQ(peekBytes(fsys, "chain.dat", off, kSegment),
                clientBlock(c, off, kSegment))
          << "chain-lost bytes at client " << c << " block " << b;
    }
  }
}

TEST(DelegateCrashTest, AdopterDiesMidReplayChainFallsToOriginalJournals) {
  // The cascade the chain test above cannot reach: delegate 0 dies mid-put,
  // delegate 1 adopts it and then dies INSIDE the adoption itself — while
  // re-appending 0's replayed records into its own WAL
  // (CrashPoint::kMidRecovery), leaving a torn gen-1 copy behind. Delegate 2
  // must then adopt 1 AND re-adopt 0 from 0's ORIGINAL journal (the chain
  // scan over death order), because 1's WAL alone carries only the torn
  // fragment of 0's data. The torn frame is discarded by CRC; the duplicate
  // replays are byte-identical and therefore idempotent.
  fs::Filesystem fsys(fsCfg());
  core::TcioDelegateStats stats;
  constexpr int kProcs = 6;
  constexpr int kDelegates = 3;
  constexpr int kClients = kProcs - kDelegates;
  constexpr int kBlocks = 4;
  mpi::runJob(job(kProcs, /*seed=*/41), [&](mpi::Comm& comm) {
    core::TcioConfig cfg = delegated(kDelegates);
    cfg.crash.enabled = true;
    cfg.crash.journal = true;
    cfg.crash.liveness_window = 0.25;
    cfg.faults.seed = 41;
    cfg.faults.crashes.push_back({/*rank=*/0, CrashPoint::kMidJournal, 2});
    cfg.faults.crashes.push_back({/*rank=*/1, CrashPoint::kMidRecovery, 0});
    runSession(comm, fsys, cfg, [&](Session& s, Channel& ch) {
      const int c = s.clientComm().rank();
      DFile f(ch, "cascade.dat", fs::kWrite | fs::kCreate);
      for (int b = 0; b < kBlocks; ++b) {
        const Offset off = (static_cast<Offset>(c) * kBlocks + b) * kSegment;
        f.writeAt(off, clientBlock(c, off, kSegment));
      }
      f.close();
    }, &stats);
  });
  EXPECT_EQ(stats.delegates_crashed, 2);
  // Delegate 2 adopted both dead shards (1's own half-finished adoption of 0
  // died with it and never reached the merge); 0's was a re-adoption — its
  // first adopter was already dead when the shard landed here.
  EXPECT_EQ(stats.shards_adopted, 2);
  EXPECT_EQ(stats.shards_readopted, 1)
      << "the chain scan must re-adopt the first victim from its original "
         "journal after its adopter died mid-replay";
  for (int c = 0; c < kClients; ++c) {
    for (int b = 0; b < kBlocks; ++b) {
      const Offset off = (static_cast<Offset>(c) * kBlocks + b) * kSegment;
      EXPECT_EQ(peekBytes(fsys, "cascade.dat", off, kSegment),
                clientBlock(c, off, kSegment))
          << "cascade-lost bytes at client " << c << " block " << b;
    }
  }
}

TEST(DelegateCrashTest, CrashRunsAreDeterministic) {
  constexpr int kProcs = 6;
  auto run = [&] {
    fs::Filesystem fsys(fsCfg());
    core::TcioDelegateStats stats;
    SimTime makespan = 0;
    mpi::runJob(job(kProcs, /*seed=*/23), [&](mpi::Comm& comm) {
      core::TcioConfig cfg = delegated(/*d=*/2);
      cfg.crash.enabled = true;
      cfg.faults.seed = 23;
      cfg.faults.crashes.push_back(
          {/*rank=*/1, CrashPoint::kMidJournal, /*after=*/2});
      runSession(comm, fsys, cfg, [&](Session& s, Channel& ch) {
        const int c = s.clientComm().rank();
        DFile f(ch, "det.dat", fs::kWrite | fs::kCreate);
        for (int b = 0; b < 3; ++b) {
          const Offset off = (static_cast<Offset>(c) * 3 + b) * kSegment;
          f.writeAt(off, clientBlock(c, off, kSegment));
        }
        f.close();
        makespan = comm.proc().now();
      }, &stats);
    });
    const Bytes size = fsys.peekSize("det.dat");
    std::uint32_t crc = 0;
    for (Offset off = 0; off < size; off += kSegment) {
      const auto chunk = peekBytes(fsys, "det.dat", off,
                                   std::min<Bytes>(kSegment, size - off));
      crc = crc32(std::span<const std::byte>(chunk), crc);
    }
    return std::tuple<std::uint32_t, SimTime, std::int64_t, std::int64_t>{
        crc, makespan, stats.deferred_resubmissions,
        stats.journal_records_replayed};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

// -- Churn workload ------------------------------------------------------------

TEST(DelegateChurnTest, OpenWriteCloseChurnMatchesBaseline) {
  workload::ChurnConfig ccfg;
  ccfg.rounds = 3;
  ccfg.block_bytes = 256;
  ccfg.blocks_per_round = 2;
  ccfg.tcio.segment_size = kSegment;
  ccfg.tcio.segments_per_rank = 8;
  ccfg.tcio.delegate_ranks = -1;  // baseline even if TCIO_DELEGATES is set

  // Baseline: every rank churns through core::File.
  fs::Filesystem base_fs(fsCfg());
  mpi::runJob(job(6), [&](mpi::Comm& comm) {
    const workload::ChurnResult r = workload::runChurn(comm, base_fs, ccfg);
    EXPECT_EQ(r.files, ccfg.rounds);
    EXPECT_EQ(r.delegate.submissions, 0);
  });

  // Delegate mode: 2 servers, 4 clients, a tight queue to exercise
  // admission under churn.
  fs::Filesystem del_fs(fsCfg());
  workload::ChurnConfig dcfg = ccfg;
  dcfg.tcio.delegate_ranks = 2;
  dcfg.tcio.delegate.queue_capacity = 2;
  mpi::runJob(job(6), [&](mpi::Comm& comm) {
    const workload::ChurnResult r = workload::runChurn(comm, del_fs, dcfg);
    EXPECT_GT(r.delegate.submissions, 0);
    EXPECT_GT(r.delegate.batches, 0);
  });

  // Same deterministic bytes on both paths — note the baseline writes with
  // 6 ranks while delegate mode writes with the 4 clients, so compare each
  // against the generator, not against each other.
  for (int r = 0; r < ccfg.rounds; ++r) {
    const std::string name = workload::churnFileName(ccfg, r);
    for (int c = 0; c < 4; ++c) {
      for (int b = 0; b < ccfg.blocks_per_round; ++b) {
        const Offset off =
            (static_cast<Offset>(c) * ccfg.blocks_per_round + b) *
            ccfg.block_bytes;
        std::vector<std::byte> want(
            static_cast<std::size_t>(ccfg.block_bytes));
        for (std::int64_t i = 0; i < ccfg.block_bytes; ++i) {
          want[static_cast<std::size_t>(i)] = workload::churnByte(r, c, b, i);
        }
        EXPECT_EQ(peekBytes(base_fs, name, off, ccfg.block_bytes), want);
        EXPECT_EQ(peekBytes(del_fs, name, off, ccfg.block_bytes), want);
      }
    }
  }
}

TEST(DelegateChurnTest, EnvironmentDrivenDelegateChurn) {
  // The TCIO_DELEGATES path the CI legs use: config says 0, env says 2.
  workload::ChurnConfig ccfg;
  ccfg.rounds = 2;
  ccfg.block_bytes = 128;
  ccfg.tcio.segment_size = kSegment;
  ccfg.tcio.segments_per_rank = 8;
  ::setenv("TCIO_DELEGATES", "2", 1);
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(6), [&](mpi::Comm& comm) {
    const workload::ChurnResult r = workload::runChurn(comm, fsys, ccfg);
    EXPECT_GT(r.delegate.submissions, 0);
  });
  ::unsetenv("TCIO_DELEGATES");
  const std::map<int, std::int64_t> ops = fsys.opsByClient();
  for (const auto& [rank, n] : ops) EXPECT_LT(rank, 2);
}

// -- Node-aggregation forwarding -----------------------------------------------

TEST(DelegateForwardingTest, NodeLeadersFunnelStagedWrites) {
  fs::Filesystem fsys(fsCfg());
  core::TcioDelegateStats stats;
  mpi::runJob([&] {
    mpi::JobConfig c = job(6);
    c.net.ranks_per_node = 2;
    return c;
  }(), [&](mpi::Comm& comm) {
    core::TcioConfig cfg = delegated(/*d=*/2);
    cfg.node_aggregation = true;
    runSession(comm, fsys, cfg, [&](Session& s, Channel& ch) {
      const int c = s.clientComm().rank();
      DFile f(ch, "funnel.dat", fs::kWrite | fs::kCreate);
      const Offset off = static_cast<Offset>(c) * kSegment;
      f.writeAt(off, clientBlock(c, off, kSegment));
      f.flush();  // node leaders funnel and submit
      EXPECT_EQ(f.close(), static_cast<Bytes>(s.numClients()) * kSegment);
    }, &stats);
  });
  // Only the node leaders submitted puts, so the delegates saw fewer
  // clients than the session has.
  EXPECT_GT(stats.submissions, 0);
  for (int c = 0; c < 4; ++c) {
    const Offset off = static_cast<Offset>(c) * kSegment;
    EXPECT_EQ(peekBytes(fsys, "funnel.dat", off, kSegment),
              clientBlock(c, off, kSegment));
  }
}

}  // namespace
}  // namespace tcio::delegate
