// Property test: the engine is bit-deterministic — the same program produces
// identical virtual times and event counts on every run, regardless of how
// the OS schedules the rank threads.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/timeline.h"

namespace tcio::sim {
namespace {

struct Outcome {
  std::vector<SimTime> times;
  std::int64_t events;
  SimTime horizon;

  bool operator==(const Outcome&) const = default;
};

// A deliberately contention-heavy program: every rank races on a shared
// timeline and hands tokens down a ring.
Outcome runOnce(int P, std::uint64_t seed) {
  Engine::Config cfg;
  cfg.num_ranks = P;
  cfg.seed = seed;
  Engine eng(cfg);
  Timeline shared(1000.0, 0.001);
  std::vector<Event> round1(static_cast<std::size_t>(P));
  Outcome out;
  out.times.resize(static_cast<std::size_t>(P));
  eng.run([&](Proc& p) {
    const int r = p.rank();
    // Random local compute.
    p.advance(p.rng().uniform() * 0.01);
    // Contend on the shared resource.
    for (int i = 0; i < 20; ++i) {
      const Bytes n = 1 + p.rng().uniformInt(0, 99);
      p.atomic([&] { p.advanceTo(shared.serve(p.now(), n)); });
    }
    // Ring handoff: rank r completes r+1's event.
    if (r > 0) p.wait(round1[static_cast<std::size_t>(r)], "ring");
    p.atomic([&] {
      if (r + 1 < P) p.complete(round1[static_cast<std::size_t>(r) + 1], p.now());
      out.times[static_cast<std::size_t>(r)] = p.now();
    });
  });
  out.events = eng.eventCount();
  out.horizon = shared.horizon();
  return out;
}

TEST(DeterminismTest, IdenticalAcrossRepeatedRuns) {
  const Outcome first = runOnce(32, 7);
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(runOnce(32, 7), first) << "repetition " << rep;
  }
}

TEST(DeterminismTest, DifferentSeedsChangeOutcome) {
  EXPECT_NE(runOnce(32, 7), runOnce(32, 8));
}

TEST(DeterminismTest, HoldsAtLargerScale) {
  const Outcome first = runOnce(128, 3);
  EXPECT_EQ(runOnce(128, 3), first);
}

}  // namespace
}  // namespace tcio::sim
