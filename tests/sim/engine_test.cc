#include "sim/engine.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace tcio::sim {
namespace {

Engine::Config cfg(int p, std::uint64_t seed = 1) {
  Engine::Config c;
  c.num_ranks = p;
  c.seed = seed;
  return c;
}

TEST(EngineTest, RunsEveryRankExactlyOnce) {
  Engine eng(cfg(8));
  std::vector<int> visits(8, 0);
  eng.run([&](Proc& p) { p.atomic([&] { ++visits[p.rank()]; }); });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(EngineTest, AdvanceMovesLocalClock) {
  Engine eng(cfg(1));
  eng.run([](Proc& p) {
    EXPECT_DOUBLE_EQ(p.now(), 0.0);
    p.advance(1.5);
    EXPECT_DOUBLE_EQ(p.now(), 1.5);
    p.advanceTo(1.0);  // no-op, already past
    EXPECT_DOUBLE_EQ(p.now(), 1.5);
    p.advanceTo(2.0);
    EXPECT_DOUBLE_EQ(p.now(), 2.0);
  });
  EXPECT_DOUBLE_EQ(eng.makespan(), 2.0);
}

TEST(EngineTest, AtomicSectionsExecuteInVirtualTimeOrder) {
  // Each rank advances to a distinct time, then appends itself to a shared
  // log inside atomic(); the log must come out sorted by (time, rank).
  Engine eng(cfg(16));
  std::vector<std::pair<double, int>> log;
  eng.run([&](Proc& p) {
    // Reverse times: rank 0 latest, rank 15 earliest.
    p.advance(static_cast<double>(16 - p.rank()));
    p.atomic([&] { log.emplace_back(p.now(), p.rank()); });
  });
  ASSERT_EQ(log.size(), 16u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LT(log[i - 1], log[i]) << "out of order at " << i;
  }
}

TEST(EngineTest, TiesBreakByRankId) {
  Engine eng(cfg(8));
  std::vector<int> order;
  eng.run([&](Proc& p) {
    p.advance(1.0);  // all ranks same time
    p.atomic([&] { order.push_back(p.rank()); });
  });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EngineTest, EventWaitAdvancesWaiterToCompletionTime) {
  Engine eng(cfg(2));
  Event ev;
  eng.run([&](Proc& p) {
    if (p.rank() == 0) {
      p.wait(ev, "test event");
      EXPECT_DOUBLE_EQ(p.now(), 5.0);
    } else {
      p.advance(5.0);
      p.atomic([&] { p.complete(ev, p.now()); });
    }
  });
}

TEST(EngineTest, WaitOnAlreadyCompleteEventDoesNotBlock) {
  Engine eng(cfg(2));
  Event ev;
  eng.run([&](Proc& p) {
    if (p.rank() == 1) {
      p.atomic([&] { p.complete(ev, 3.0); });
    } else {
      // Rank 0 runs first (time 0 tie, lower id) and must yield to let rank 1
      // complete the event; force rank 0 past rank 1 in time first.
      p.advance(10.0);
      p.wait(ev, "pre-completed");
      EXPECT_DOUBLE_EQ(p.now(), 10.0);  // completion at 3 < own 10
    }
  });
}

TEST(EngineTest, MultipleWaitersAllReleased) {
  Engine eng(cfg(5));
  Event ev;
  eng.run([&](Proc& p) {
    if (p.rank() == 4) {
      p.advance(2.0);
      p.atomic([&] { p.complete(ev, p.now()); });
    } else {
      p.wait(ev, "fanout");
      EXPECT_DOUBLE_EQ(p.now(), 2.0);
    }
  });
}

TEST(EngineTest, DeadlockIsDetectedAndReported) {
  Engine eng(cfg(3));
  Event never;
  try {
    eng.run([&](Proc& p) { p.wait(never, "message that never comes"); });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("message that never comes"), std::string::npos);
    EXPECT_NE(what.find("rank 0"), std::string::npos);
    EXPECT_NE(what.find("rank 2"), std::string::npos);
  }
}

TEST(EngineTest, PartialDeadlockDetectedWhenOthersFinish) {
  Engine eng(cfg(3));
  Event never;
  EXPECT_THROW(eng.run([&](Proc& p) {
                 if (p.rank() == 0) p.wait(never, "stuck");
                 // ranks 1, 2 just finish
               }),
               DeadlockError);
}

TEST(EngineTest, UserExceptionPropagatesToRunCaller) {
  Engine eng(cfg(4));
  EXPECT_THROW(eng.run([&](Proc& p) {
                 p.advance(static_cast<double>(p.rank()));
                 p.atomic([] {});
                 if (p.rank() == 2) throw FsError("boom from rank 2");
                 // Other ranks keep doing engine ops and must unwind cleanly.
                 for (int i = 0; i < 100; ++i) {
                   p.advance(0.5);
                   p.atomic([] {});
                 }
               }),
               FsError);
}

TEST(EngineTest, ExceptionWhileOthersBlockedStillUnwinds) {
  Engine eng(cfg(3));
  Event never;
  EXPECT_THROW(eng.run([&](Proc& p) {
                 if (p.rank() == 2) {
                   p.advance(1.0);
                   throw MpiError("fatal");
                 }
                 p.wait(never, "blocked before failure");
               }),
               MpiError);
}

TEST(EngineTest, EventCountCountsAtomicSections) {
  Engine eng(cfg(2));
  eng.run([&](Proc& p) {
    for (int i = 0; i < 10; ++i) {
      p.advance(1.0);
      p.atomic([] {});
    }
  });
  EXPECT_EQ(eng.eventCount(), 20);
}

TEST(EngineTest, MakespanIsMaxOverRanks) {
  Engine eng(cfg(4));
  eng.run([&](Proc& p) { p.advance(static_cast<double>(p.rank()) * 2.0); });
  EXPECT_DOUBLE_EQ(eng.makespan(), 6.0);
}

TEST(EngineTest, PerRankRngStreamsAreIndependentAndSeeded) {
  Engine eng1(cfg(2, 99));
  std::map<int, std::uint64_t> draw1;
  eng1.run([&](Proc& p) {
    const auto v = p.rng().next();
    p.atomic([&] { draw1[p.rank()] = v; });
  });
  EXPECT_NE(draw1[0], draw1[1]);

  Engine eng2(cfg(2, 99));
  std::map<int, std::uint64_t> draw2;
  eng2.run([&](Proc& p) {
    const auto v = p.rng().next();
    p.atomic([&] { draw2[p.rank()] = v; });
  });
  EXPECT_EQ(draw1, draw2);
}

TEST(EngineTest, ManyRanksInterleaveCorrectly) {
  // Ping-pong chain: rank r waits for event r, completes event r+1.
  const int P = 64;
  Engine eng(cfg(P));
  std::vector<Event> evs(static_cast<std::size_t>(P) + 1);
  eng.run([&](Proc& p) {
    const int r = p.rank();
    if (r == 0) {
      p.advance(1.0);
      p.atomic([&] { p.complete(evs[1], p.now()); });
    } else {
      p.wait(evs[static_cast<std::size_t>(r)], "chain");
      p.advance(1.0);
      p.atomic([&] {
        if (r + 1 <= P - 1) p.complete(evs[static_cast<std::size_t>(r) + 1], p.now());
      });
      EXPECT_DOUBLE_EQ(p.now(), static_cast<double>(r + 1));
    }
  });
  EXPECT_DOUBLE_EQ(eng.makespan(), static_cast<double>(P));
}

TEST(EngineTest, RunTwiceIsRejected) {
  Engine eng(cfg(1));
  eng.run([](Proc&) {});
  EXPECT_THROW(eng.run([](Proc&) {}), Error);
}

}  // namespace
}  // namespace tcio::sim
