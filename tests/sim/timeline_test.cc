#include "sim/timeline.h"

#include <gtest/gtest.h>

namespace tcio::sim {
namespace {

TEST(TimelineTest, ServesAtNominalRateWhenIdle) {
  Timeline t(100.0);  // 100 bytes/sec
  EXPECT_DOUBLE_EQ(t.serve(0.0, 50), 0.5);
  EXPECT_DOUBLE_EQ(t.horizon(), 0.5);
}

TEST(TimelineTest, QueuesFcfs) {
  Timeline t(100.0);
  EXPECT_DOUBLE_EQ(t.serve(0.0, 100), 1.0);
  // Arrives at 0.2 but must wait for the first transfer.
  EXPECT_DOUBLE_EQ(t.serve(0.2, 100), 2.0);
}

TEST(TimelineTest, IdleGapResetsBacklog) {
  Timeline t(100.0);
  t.serve(0.0, 100);              // done at 1.0
  EXPECT_DOUBLE_EQ(t.serve(5.0, 100), 6.0);  // starts fresh at 5.0
  EXPECT_DOUBLE_EQ(t.backlog(7.0), 0.0);
}

TEST(TimelineTest, PerRequestOverheadCharged) {
  Timeline t(100.0, 0.25);
  EXPECT_DOUBLE_EQ(t.serve(0.0, 100), 1.25);
}

TEST(TimelineTest, BacklogReported) {
  Timeline t(100.0);
  t.serve(0.0, 300);  // horizon 3.0
  EXPECT_DOUBLE_EQ(t.backlog(1.0), 2.0);
  EXPECT_DOUBLE_EQ(t.backlog(4.0), 0.0);
}

TEST(TimelineTest, CongestionSlowsBurstTail) {
  Timeline fast(100.0);
  Timeline congested(100.0);
  congested.setCongestion(/*gamma=*/1.0, /*tau=*/1.0);
  // Both serve a burst of 4 back-to-back requests arriving at t=0.
  SimTime end_fast = 0, end_cong = 0;
  for (int i = 0; i < 4; ++i) {
    end_fast = fast.serve(0.0, 100);
    end_cong = congested.serve(0.0, 100);
  }
  EXPECT_DOUBLE_EQ(end_fast, 4.0);
  EXPECT_GT(end_cong, end_fast);  // tail served slower due to backlog
}

TEST(TimelineTest, CongestionDoesNotAffectIsolatedRequests) {
  Timeline t(100.0);
  t.setCongestion(2.0, 0.1);
  EXPECT_DOUBLE_EQ(t.serve(0.0, 100), 1.0);   // no backlog, nominal
  EXPECT_DOUBLE_EQ(t.serve(10.0, 100), 11.0);  // idle again
}

TEST(TimelineTest, CountersAccumulate) {
  Timeline t(100.0);
  t.serve(0.0, 10);
  t.serve(0.0, 20);
  EXPECT_EQ(t.totalBytes(), 30);
  EXPECT_EQ(t.totalRequests(), 2);
  EXPECT_GT(t.busyTime(), 0.0);
}

TEST(TimelineTest, ZeroByteRequestChargesOnlyOverhead) {
  Timeline t(100.0, 0.5);
  EXPECT_DOUBLE_EQ(t.serve(1.0, 0), 1.5);
}

}  // namespace
}  // namespace tcio::sim
