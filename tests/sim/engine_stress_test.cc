// Stress and adversarial tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/engine.h"
#include "sim/timeline.h"

namespace tcio::sim {
namespace {

Engine::Config cfg(int p, std::uint64_t seed = 1) {
  Engine::Config c;
  c.num_ranks = p;
  c.seed = seed;
  return c;
}

TEST(EngineStressTest, RandomProducerConsumerGraph) {
  // Random pairwise handoffs: rank i completes events for rank i+1..; each
  // rank waits on a random subset. Construct so no cycle exists (waits only
  // on lower ranks) — must terminate with consistent clocks.
  const int P = 48;
  Engine eng(cfg(P, 99));
  std::vector<std::vector<Event>> evs(static_cast<std::size_t>(P));
  for (auto& v : evs) v = std::vector<Event>(4);
  std::vector<SimTime> finish(static_cast<std::size_t>(P), 0);
  eng.run([&](Proc& p) {
    const int r = p.rank();
    Rng rng(static_cast<std::uint64_t>(r) + 7);
    // Wait on up to 3 events of lower ranks.
    if (r > 0) {
      for (int k = 0; k < 3; ++k) {
        const int src = static_cast<int>(rng.uniformInt(0, r - 1));
        const int slot = static_cast<int>(rng.uniformInt(0, 3));
        p.wait(evs[static_cast<std::size_t>(src)][static_cast<std::size_t>(slot)],
               "graph");
      }
    }
    p.advance(rng.uniform() * 0.01);
    p.atomic([&] {
      for (auto& e : evs[static_cast<std::size_t>(r)]) {
        if (!e.ready()) p.complete(e, p.now());
      }
      finish[static_cast<std::size_t>(r)] = p.now();
    });
  });
  // Causality: each rank finished no earlier than every rank it waited on
  // could have completed (weak check: finish times are non-negative and
  // the run terminated).
  for (SimTime t : finish) EXPECT_GE(t, 0.0);
}

TEST(EngineStressTest, ManyRanksManyEvents) {
  const int P = 256;
  Engine eng(cfg(P));
  Timeline shared(1e9);
  eng.run([&](Proc& p) {
    for (int i = 0; i < 50; ++i) {
      p.advance(1e-6 * (p.rank() + 1));
      p.atomic([&] { p.advanceTo(shared.serve(p.now(), 1000)); });
    }
  });
  EXPECT_EQ(eng.eventCount(), static_cast<std::int64_t>(P) * 50);
  EXPECT_GT(eng.makespan(), 0.0);
}

TEST(EngineStressTest, WaitAfterCompleteNeverBlocks) {
  // Heavily interleaved complete-then-wait patterns.
  const int P = 32;
  Engine eng(cfg(P));
  std::vector<Event> evs(static_cast<std::size_t>(P));
  eng.run([&](Proc& p) {
    const int r = p.rank();
    // Everyone completes their own event first, then waits on a neighbour's.
    p.advance(0.001 * r);
    p.atomic([&] { p.complete(evs[static_cast<std::size_t>(r)], p.now()); });
    p.wait(evs[static_cast<std::size_t>((r + 1) % P)], "neighbour");
  });
  EXPECT_DOUBLE_EQ(eng.makespan(), 0.001 * (P - 1));
}

TEST(EngineStressTest, DeterministicUnderHeavyContention) {
  auto once = [] {
    const int P = 64;
    Engine eng(cfg(P, 5));
    Timeline line(1e6, 1e-6);
    std::vector<SimTime> ends(static_cast<std::size_t>(P));
    eng.run([&](Proc& p) {
      Rng& rng = p.rng();
      for (int i = 0; i < 30; ++i) {
        p.advance(rng.uniform() * 1e-5);
        p.atomic([&] { p.advanceTo(line.serve(p.now(), rng.uniformInt(1, 999))); });
      }
      ends[static_cast<std::size_t>(p.rank())] = p.now();
    });
    return ends;
  };
  EXPECT_EQ(once(), once());
}

TEST(EngineStressTest, ZeroWorkRanksFinishImmediately) {
  Engine eng(cfg(512));
  eng.run([](Proc&) {});
  EXPECT_DOUBLE_EQ(eng.makespan(), 0.0);
}

TEST(EngineStressTest, ExceptionStormOnlyFirstFailureReported) {
  Engine eng(cfg(16));
  try {
    eng.run([&](Proc& p) {
      p.advance(static_cast<double>(p.rank()));
      p.atomic([] {});
      // Every rank throws; virtual-time order makes rank 0 deterministic
      // first.
      throw FsError("boom from rank " + std::to_string(p.rank()));
    });
    FAIL() << "expected FsError";
  } catch (const FsError& e) {
    EXPECT_NE(std::string(e.what()).find("rank 0"), std::string::npos);
  }
}

}  // namespace
}  // namespace tcio::sim
