// Unit tests for the retry backoff schedule: exponential growth with cap,
// deterministic jitter from the seed, 1-based attempt accounting, and the
// typed error the FsClient raises when a multi-attempt budget is exhausted.
#include "sim/backoff.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "fs/client.h"
#include "fs/filesystem.h"
#include "mpi/runtime.h"

namespace tcio::sim {
namespace {

RetryPolicy policy() {
  RetryPolicy p;
  p.max_attempts = 8;
  p.base_backoff = 1.0e-3;
  p.backoff_multiplier = 2.0;
  p.max_backoff = 8.0e-3;
  p.jitter_fraction = 0.5;
  return p;
}

TEST(BackoffTest, JitterIsDeterministicFromSeed) {
  RetryPolicy p = policy();
  Rng a(42), b(42), c(43);
  std::vector<SimTime> da, db, dc;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    da.push_back(backoffDelay(p, attempt, a));
    db.push_back(backoffDelay(p, attempt, b));
    dc.push_back(backoffDelay(p, attempt, c));
  }
  EXPECT_EQ(da, db);  // same seed, bit-identical schedule
  EXPECT_NE(da, dc);  // different seed, different jitter draws
}

TEST(BackoffTest, ExponentialGrowthBoundedByCapAndJitter) {
  RetryPolicy p = policy();
  Rng rng(7);
  for (int attempt = 1; attempt <= 10; ++attempt) {
    const SimTime d = backoffDelay(p, attempt, rng);
    double nominal = p.base_backoff;
    for (int i = 1; i < attempt; ++i) nominal *= p.backoff_multiplier;
    nominal = std::min(nominal, p.max_backoff);
    EXPECT_GE(d, nominal * (1 - p.jitter_fraction / 2));
    EXPECT_LE(d, nominal * (1 + p.jitter_fraction / 2));
  }
}

TEST(BackoffTest, ZeroJitterIsExactExponential) {
  RetryPolicy p = policy();
  p.jitter_fraction = 0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(backoffDelay(p, 1, rng), 1.0e-3);
  EXPECT_DOUBLE_EQ(backoffDelay(p, 2, rng), 2.0e-3);
  EXPECT_DOUBLE_EQ(backoffDelay(p, 3, rng), 4.0e-3);
  EXPECT_DOUBLE_EQ(backoffDelay(p, 5, rng), 8.0e-3);  // capped
}

TEST(BackoffTest, AttemptNumbersAreOneBased) {
  RetryPolicy p = policy();
  Rng rng(1);
  EXPECT_THROW(backoffDelay(p, 0, rng), Error);
  EXPECT_THROW(backoffDelay(p, -3, rng), Error);
}

TEST(BackoffTest, InvalidPolicyRejected) {
  Rng rng(1);
  RetryPolicy bad = policy();
  bad.backoff_multiplier = 0.5;  // shrinking backoff is a config bug
  EXPECT_THROW(backoffDelay(bad, 1, rng), Error);
  bad = policy();
  bad.jitter_fraction = 3.0;  // would allow negative delays
  EXPECT_THROW(backoffDelay(bad, 1, rng), Error);
}

// Exhausting a multi-attempt budget surfaces the typed RetryExhaustedError
// (catchable as TransientFsError) with exact attempt accounting; with retry
// disabled the original error class is preserved unchanged.
TEST(BackoffTest, RetryExhaustionIsTypedWithAttemptCount) {
  fs::FsConfig fcfg;
  fcfg.num_osts = 1;
  fcfg.stripe_size = 1024;
  fs::Filesystem fsys(fcfg);
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 11;
  faults.fs_transient_write_rate = 1.0;  // every write faults
  fsys.installFaultPlan(faults);

  mpi::JobConfig jc;
  jc.num_ranks = 1;
  mpi::runJob(jc, [&](mpi::Comm& comm) {
    RetryPolicy p = policy();
    p.max_attempts = 4;
    fs::FsClient fc(fsys, comm.proc());
    fc.setRetryPolicy(p);
    fs::FsFile f = fc.open("r.dat", fs::kWrite | fs::kCreate);
    const char buf[16] = {};
    bool caught = false;
    try {
      fc.pwrite(f, 0, buf, sizeof(buf));
    } catch (const RetryExhaustedError& e) {
      caught = true;
      EXPECT_EQ(e.attempts, 4);
      EXPECT_NE(std::string(e.what()).find("pwrite"), std::string::npos);
    }
    EXPECT_TRUE(caught);
    EXPECT_EQ(fc.retryStats().transient_faults, 4);
    EXPECT_EQ(fc.retryStats().retries, 3);  // 4 attempts = 3 backoffs
    EXPECT_EQ(fc.retryStats().giveups, 1);
  });
}

TEST(BackoffTest, SingleAttemptPreservesOriginalErrorClass) {
  fs::FsConfig fcfg;
  fcfg.num_osts = 1;
  fcfg.stripe_size = 1024;
  fs::Filesystem fsys(fcfg);
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 11;
  faults.fs_transient_write_rate = 1.0;
  fsys.installFaultPlan(faults);

  mpi::JobConfig jc;
  jc.num_ranks = 1;
  mpi::runJob(jc, [&](mpi::Comm& comm) {
    fs::FsClient fc(fsys, comm.proc());  // default policy: max_attempts == 1
    fs::FsFile f = fc.open("s.dat", fs::kWrite | fs::kCreate);
    const char buf[16] = {};
    bool plain_transient = false;
    try {
      fc.pwrite(f, 0, buf, sizeof(buf));
    } catch (const RetryExhaustedError&) {
      // Wrong: no retry was configured, the original class must surface.
    } catch (const TransientFsError&) {
      plain_transient = true;
    }
    EXPECT_TRUE(plain_transient);
    EXPECT_EQ(fc.retryStats().retries, 0);
    EXPECT_EQ(fc.retryStats().giveups, 1);
  });
}

}  // namespace
}  // namespace tcio::sim
