#include <gtest/gtest.h>

#include "sim/timeline.h"

namespace tcio::sim {
namespace {

TEST(TimelineDurationTest, ServesFixedDurations) {
  Timeline t(1.0);  // rate irrelevant for durations
  EXPECT_DOUBLE_EQ(t.serveDuration(0.0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(t.serveDuration(0.0, 0.25), 0.75);  // queued
  EXPECT_DOUBLE_EQ(t.serveDuration(2.0, 0.1), 2.1);    // idle gap
}

TEST(TimelineDurationTest, MixesWithByteService) {
  Timeline t(100.0);
  EXPECT_DOUBLE_EQ(t.serve(0.0, 100), 1.0);
  EXPECT_DOUBLE_EQ(t.serveDuration(0.0, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(t.serve(0.0, 50), 2.0);
}

TEST(TimelineDurationTest, CongestionCapBoundsSlowdown) {
  Timeline t(100.0);
  t.setCongestion(/*gamma=*/100.0, /*tau=*/1e-3, /*max_slowdown=*/2.0);
  t.serve(0.0, 1000);  // builds 10s of backlog
  // Massive backlog, but the next request slows by at most 2x.
  const SimTime before = t.horizon();
  const SimTime end = t.serve(0.0, 100);
  EXPECT_NEAR(end - before, 2.0, 1e-9);
}

TEST(TimelineDurationTest, CongestionAppliesToDurations) {
  Timeline calm(1.0);
  Timeline cong(1.0);
  cong.setCongestion(1.0, 0.1, 4.0);
  calm.serveDuration(0.0, 1.0);
  cong.serveDuration(0.0, 1.0);
  const SimTime e1 = calm.serveDuration(0.0, 1.0);
  const SimTime e2 = cong.serveDuration(0.0, 1.0);
  EXPECT_GT(e2, e1);
}

TEST(TimelineDurationTest, RequestCountersIncludeDurations) {
  Timeline t(10.0);
  t.serve(0.0, 10);
  t.serveDuration(0.0, 1.0);
  EXPECT_EQ(t.totalRequests(), 2);
  EXPECT_EQ(t.totalBytes(), 10);  // durations move no bytes
}

TEST(TimelineDurationTest, ZeroDurationStillOrdersFcfs) {
  Timeline t(10.0);
  t.serve(0.0, 100);  // horizon 10
  EXPECT_DOUBLE_EQ(t.serveDuration(0.0, 0.0), 10.0);
}

}  // namespace
}  // namespace tcio::sim
