#include "mpiio/view.h"

#include <gtest/gtest.h>

#include <array>

namespace tcio::io {
namespace {

mpi::Datatype etypeIntDouble() {
  const std::array<std::int64_t, 2> lens{1, 1};
  const std::array<Offset, 2> displs{0, 4};
  const std::array<mpi::Datatype, 2> types{mpi::Datatype::int32(),
                                           mpi::Datatype::float64()};
  return mpi::Datatype::structType(lens, displs, types).commit();
}

TEST(FileViewTest, IdentityViewMapsDirectly) {
  FileView v;
  const auto ext = v.mapExtents(10, 5);
  ASSERT_EQ(ext.size(), 1u);
  EXPECT_EQ(ext[0], (Extent{10, 15}));
}

TEST(FileViewTest, RequiresCommittedTypes) {
  auto e = mpi::Datatype::byte();  // not committed
  auto f = mpi::Datatype::contiguous(4, mpi::Datatype::byte()).commit();
  EXPECT_THROW(FileView(0, e, f), Error);
}

TEST(FileViewTest, FiletypeMustBeMultipleOfEtype) {
  auto e = mpi::Datatype::int32().commit();
  auto f = mpi::Datatype::contiguous(3, mpi::Datatype::byte()).commit();
  EXPECT_THROW(FileView(0, e, f), Error);
}

TEST(FileViewTest, PaperFig2ViewForRankZero) {
  // P=2: etype = {int,double} (12 B), filetype = vector(LEN=3, 1, stride 2).
  auto e = etypeIntDouble();
  auto f = mpi::Datatype::vector(3, 1, 2, e).commit();
  FileView v(0, e, f);
  EXPECT_EQ(v.tilePayload(), 36);
  const auto ext = v.mapExtents(0, 36);
  ASSERT_EQ(ext.size(), 3u);
  EXPECT_EQ(ext[0], (Extent{0, 12}));
  EXPECT_EQ(ext[1], (Extent{24, 36}));
  EXPECT_EQ(ext[2], (Extent{48, 60}));
}

TEST(FileViewTest, PaperFig2ViewForRankOneUsesDisplacement) {
  auto e = etypeIntDouble();
  auto f = mpi::Datatype::vector(3, 1, 2, e).commit();
  FileView v(/*disp=*/12, e, f);
  const auto ext = v.mapExtents(0, 36);
  ASSERT_EQ(ext.size(), 3u);
  EXPECT_EQ(ext[0], (Extent{12, 24}));
  EXPECT_EQ(ext[1], (Extent{36, 48}));
  EXPECT_EQ(ext[2], (Extent{60, 72}));
}

TEST(FileViewTest, PartialRangeInsideSegment) {
  auto e = mpi::Datatype::byte().commit();
  auto f = mpi::Datatype::vector(2, 4, 8, mpi::Datatype::byte()).commit();
  // segments [0,4) [8,12), payload 8, extent 12.
  FileView v(0, e, f);
  const auto ext = v.mapExtents(2, 4);
  ASSERT_EQ(ext.size(), 2u);
  EXPECT_EQ(ext[0], (Extent{2, 4}));
  EXPECT_EQ(ext[1], (Extent{8, 10}));
}

TEST(FileViewTest, TilingRepeatsFiletype) {
  auto e = mpi::Datatype::byte().commit();
  auto f = mpi::Datatype::vector(1, 2, 4, mpi::Datatype::byte()).commit();
  // One segment [0,2), payload 2, extent 2 (stride beyond count ignored).
  FileView v(0, e, f);
  const auto ext = v.mapExtents(0, 6);
  // Tiles at 0, 2, 4 merge into one contiguous run.
  ASSERT_EQ(ext.size(), 1u);
  EXPECT_EQ(ext[0], (Extent{0, 6}));
}

TEST(FileViewTest, TilingWithGapsDoesNotMerge) {
  auto e = mpi::Datatype::byte().commit();
  auto f = mpi::Datatype::vector(2, 1, 2, mpi::Datatype::byte()).commit();
  // Segments [0,1) [2,3), extent 3, payload 2.
  FileView v(0, e, f);
  const auto ext = v.mapExtents(0, 4);
  // Tile 1 starts at extent 3, so [2,3) and [3,4) merge; the gaps at 1 and 4
  // stay unmapped.
  ASSERT_EQ(ext.size(), 3u);
  EXPECT_EQ(ext[0], (Extent{0, 1}));
  EXPECT_EQ(ext[1], (Extent{2, 4}));
  EXPECT_EQ(ext[2], (Extent{5, 6}));
}

TEST(FileViewTest, OffsetBeyondFirstTile) {
  auto e = mpi::Datatype::byte().commit();
  auto f = mpi::Datatype::vector(2, 1, 2, mpi::Datatype::byte()).commit();
  FileView v(100, e, f);
  const auto ext = v.mapExtents(3, 1);  // tile 1, second payload byte
  ASSERT_EQ(ext.size(), 1u);
  EXPECT_EQ(ext[0], (Extent{105, 106}));
}

}  // namespace
}  // namespace tcio::io
