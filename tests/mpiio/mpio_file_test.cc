#include "mpiio/file.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/runtime.h"

namespace tcio::io {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 4;
  c.stripe_size = 4096;
  return c;
}

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

/// Builds the paper's Fig. 2 view for `rank` of `P` ranks, `len` etypes.
FileView fig2View(int rank, int P, std::int64_t len) {
  const std::array<std::int64_t, 2> lens{1, 1};
  const std::array<Offset, 2> displs{0, 4};
  const std::array<mpi::Datatype, 2> types{mpi::Datatype::int32(),
                                           mpi::Datatype::float64()};
  auto e = mpi::Datatype::structType(lens, displs, types).commit();
  auto f = mpi::Datatype::vector(len, 1, P, e).commit();
  return FileView(rank * 12, e, f);
}

TEST(MpioFileTest, IndependentContiguousWriteRead) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    MpioFile f = MpioFile::open(comm, fsys, "x.dat",
                                fs::kRead | fs::kWrite | fs::kCreate);
    std::vector<int> data(16);
    std::iota(data.begin(), data.end(), comm.rank() * 100);
    f.writeAt(comm.rank() * 64, data.data(), 64);
    comm.barrier();
    std::vector<int> got(16);
    f.readAt(comm.rank() * 64, got.data(), 64);
    EXPECT_EQ(got, data);
    f.close();
  });
  EXPECT_EQ(fsys.peekSize("x.dat"), 128);
}

TEST(MpioFileTest, ViewedIndependentWriteLandsInterleaved) {
  fs::Filesystem fsys(fsCfg());
  const int P = 2;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    MpioFile f = MpioFile::open(comm, fsys, "v.dat",
                                fs::kRead | fs::kWrite | fs::kCreate);
    const std::array<std::int64_t, 2> lens{1, 1};
    const std::array<Offset, 2> displs{0, 4};
    const std::array<mpi::Datatype, 2> types{mpi::Datatype::int32(),
                                             mpi::Datatype::float64()};
    auto e = mpi::Datatype::structType(lens, displs, types).commit();
    auto ft = mpi::Datatype::vector(3, 1, P, e).commit();
    f.setView(comm.rank() * 12, e, ft);
    // Payload: 3 etypes of (int, double).
    std::vector<std::byte> buf(36);
    for (int i = 0; i < 3; ++i) {
      const std::int32_t iv = comm.rank() * 10 + i;
      const double dv = comm.rank() + i * 0.5;
      std::memcpy(buf.data() + i * 12, &iv, 4);
      std::memcpy(buf.data() + i * 12 + 4, &dv, 8);
    }
    f.writeAt(0, buf.data(), 36);
    f.close();
  });
  // File layout: rank0 etype0, rank1 etype0, rank0 etype1, ...
  for (int slot = 0; slot < 6; ++slot) {
    const int rank = slot % 2;
    const int i = slot / 2;
    std::int32_t iv = 0;
    double dv = 0;
    std::vector<std::byte> raw(12);
    fsys.peek("v.dat", slot * 12, raw);
    std::memcpy(&iv, raw.data(), 4);
    std::memcpy(&dv, raw.data() + 4, 8);
    EXPECT_EQ(iv, rank * 10 + i) << "slot " << slot;
    EXPECT_DOUBLE_EQ(dv, rank + i * 0.5) << "slot " << slot;
  }
}

TEST(MpioFileTest, CollectiveWriteMatchesIndependentResult) {
  // Same Fig. 2 workload via write_all; the file bytes must be identical to
  // what the independent path produces.
  const int P = 4;
  const std::int64_t len = 8;
  auto runWith = [&](bool collective) {
    fs::Filesystem fsys(fsCfg());
    mpi::runJob(job(P), [&](mpi::Comm& comm) {
      // The independent reference must not use write data sieving: its
      // read-modify-write windows overlap other ranks' bytes and race
      // (exactly why real MPI-IO needs atomic mode for sieved writes).
      MpioConfig mc;
      mc.enable_data_sieving = false;
      MpioFile f = MpioFile::open(comm, fsys, "w.dat",
                                  fs::kRead | fs::kWrite | fs::kCreate, mc);
      FileView v = fig2View(comm.rank(), P, len);
      f.setView(v.displacement(), v.etype(), v.filetype());
      std::vector<std::byte> buf(static_cast<std::size_t>(len) * 12);
      for (std::int64_t i = 0; i < len; ++i) {
        const std::int32_t iv = comm.rank() * 1000 + static_cast<int>(i);
        const double dv = comm.rank() * 2.0 + static_cast<double>(i) * 0.25;
        std::memcpy(buf.data() + i * 12, &iv, 4);
        std::memcpy(buf.data() + i * 12 + 4, &dv, 8);
      }
      if (collective) {
        f.writeAtAll(0, buf.data(), static_cast<Bytes>(buf.size()));
      } else {
        f.writeAt(0, buf.data(), static_cast<Bytes>(buf.size()));
      }
      f.close();
    });
    std::vector<std::byte> contents(static_cast<std::size_t>(P * len * 12));
    fsys.peek("w.dat", 0, contents);
    return contents;
  };
  EXPECT_EQ(runWith(true), runWith(false));
}

TEST(MpioFileTest, CollectiveReadReturnsWrittenData) {
  const int P = 4;
  const std::int64_t len = 8;
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    MpioFile f = MpioFile::open(comm, fsys, "r.dat",
                                fs::kRead | fs::kWrite | fs::kCreate);
    FileView v = fig2View(comm.rank(), P, len);
    f.setView(v.displacement(), v.etype(), v.filetype());
    std::vector<std::byte> buf(static_cast<std::size_t>(len) * 12);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<std::byte>((comm.rank() * 37 + i) % 251);
    }
    f.writeAtAll(0, buf.data(), static_cast<Bytes>(buf.size()));
    comm.barrier();
    std::vector<std::byte> got(buf.size());
    f.readAtAll(0, got.data(), static_cast<Bytes>(got.size()));
    EXPECT_EQ(got, buf);
    f.close();
  });
}

TEST(MpioFileTest, CollectiveWriteUsesLargeFsRequests) {
  const int P = 4;
  const std::int64_t len = 64;
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    MpioFile f = MpioFile::open(comm, fsys, "agg.dat",
                                fs::kWrite | fs::kCreate);
    FileView v = fig2View(comm.rank(), P, len);
    f.setView(v.displacement(), v.etype(), v.filetype());
    std::vector<std::byte> buf(static_cast<std::size_t>(len) * 12,
                               std::byte{1});
    const TwoPhaseStats st =
        f.writeAtAll(0, buf.data(), static_cast<Bytes>(buf.size()));
    // Fully covered contiguous domain -> exactly one write per aggregator.
    EXPECT_EQ(st.fs_requests, 1);
    EXPECT_EQ(st.aggregator_buffer, len * 12);  // P*len*12 / P
    f.close();
  });
  EXPECT_EQ(fsys.stats().write_requests, P);
}

TEST(MpioFileTest, AggregatorBufferChargedAgainstBudget) {
  const int P = 2;
  mpi::JobConfig c = job(P);
  c.memory_budget_per_rank = 1000;
  fs::Filesystem fsys(fsCfg());
  EXPECT_THROW(
      mpi::runJob(c,
                  [&](mpi::Comm& comm) {
                    MpioFile f = MpioFile::open(comm, fsys, "oom.dat",
                                                fs::kWrite | fs::kCreate);
                    // 2 ranks x 2000 B domain -> 2000 B aggregator buffer
                    // each: over the 1000 B budget.
                    std::vector<std::byte> buf(2000, std::byte{1});
                    f.writeAtAll(comm.rank() * 2000, buf.data(), 2000);
                    f.close();
                  }),
      OutOfMemoryBudget);
}

TEST(MpioFileTest, CollectiveWriteWithHolesWritesOnlyCoveredRuns) {
  const int P = 2;
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    MpioFile f = MpioFile::open(comm, fsys, "holes.dat",
                                fs::kWrite | fs::kCreate);
    // Rank r writes 8 bytes at r*1000 — a huge hole in the middle.
    std::vector<std::byte> buf(8, static_cast<std::byte>(comm.rank() + 1));
    f.writeAtAll(comm.rank() * 1000, buf.data(), 8);
    f.close();
  });
  std::vector<std::byte> a(8), b(8), hole(8);
  fsys.peek("holes.dat", 0, a);
  fsys.peek("holes.dat", 1000, b);
  fsys.peek("holes.dat", 500, hole);
  EXPECT_EQ(a[0], std::byte{1});
  EXPECT_EQ(b[0], std::byte{2});
  EXPECT_EQ(hole[0], std::byte{0});  // untouched
}

TEST(MpioFileTest, DataSievingReducesRequestCountForStridedReads) {
  auto countRequests = [&](bool sieving) {
    fs::Filesystem fsys(fsCfg());
    mpi::runJob(job(1), [&](mpi::Comm& comm) {
      MpioConfig mc;
      mc.enable_data_sieving = sieving;
      MpioFile f = MpioFile::open(comm, fsys, "sieve.dat",
                                  fs::kRead | fs::kWrite | fs::kCreate, mc);
      std::vector<std::byte> init(4096, std::byte{7});
      f.writeAt(0, init.data(), 4096);
      // Strided view: 64 pieces of 8 bytes, stride 64.
      auto e = mpi::Datatype::byte().commit();
      auto ft = mpi::Datatype::vector(64, 8, 64, mpi::Datatype::byte()).commit();
      f.setView(0, e, ft);
      std::vector<std::byte> out(64 * 8);
      f.readAt(0, out.data(), static_cast<Bytes>(out.size()));
      for (auto v : out) EXPECT_EQ(v, std::byte{7});
      f.close();
    });
    return fsys.stats().read_requests;
  };
  const auto with = countRequests(true);
  const auto without = countRequests(false);
  EXPECT_LT(with, without / 8);
}

TEST(MpioFileTest, SievedStridedWriteBytesCorrect) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    MpioFile f = MpioFile::open(comm, fsys, "sw.dat",
                                fs::kRead | fs::kWrite | fs::kCreate);
    std::vector<std::byte> bg(1024, std::byte{9});
    f.writeAt(0, bg.data(), 1024);
    auto e = mpi::Datatype::byte().commit();
    auto ft = mpi::Datatype::vector(8, 4, 16, mpi::Datatype::byte()).commit();
    f.setView(0, e, ft);
    std::vector<std::byte> pieces(32, std::byte{1});
    f.writeAt(0, pieces.data(), 32);
    f.close();
  });
  // Pattern: 4 bytes of 1 at k*16, background 9 elsewhere.
  std::vector<std::byte> out(128);
  fsys.peek("sw.dat", 0, out);
  for (int i = 0; i < 128; ++i) {
    const bool inside = (i % 16) < 4;
    EXPECT_EQ(out[static_cast<std::size_t>(i)],
              inside ? std::byte{1} : std::byte{9})
        << "byte " << i;
  }
}

TEST(MpioFileTest, EmptyParticipantInCollectiveIsLegal) {
  const int P = 3;
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    MpioFile f = MpioFile::open(comm, fsys, "e.dat",
                                fs::kWrite | fs::kCreate);
    std::vector<std::byte> buf(16, static_cast<std::byte>(comm.rank()));
    // Rank 1 contributes nothing but must still participate.
    const Bytes n = comm.rank() == 1 ? 0 : 16;
    f.writeAtAll(comm.rank() * 16, buf.data(), n);
    f.close();
  });
  std::vector<std::byte> got(16);
  fsys.peek("e.dat", 32, got);
  EXPECT_EQ(got[0], std::byte{2});
}

TEST(MpioFileTest, AllEmptyCollectiveIsNoop) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    MpioFile f = MpioFile::open(comm, fsys, "n.dat",
                                fs::kWrite | fs::kCreate);
    f.writeAtAll(0, nullptr, 0);
    f.close();
  });
  EXPECT_EQ(fsys.peekSize("n.dat"), 0);
}

}  // namespace
}  // namespace tcio::io
