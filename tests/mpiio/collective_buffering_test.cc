// Collective buffering (cb_nodes): aggregator-subset two-phase I/O.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/runtime.h"
#include "mpiio/file.h"

namespace tcio::io {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 4;
  c.stripe_size = 4096;
  return c;
}

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

class CbNodesTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(AggregatorCounts, CbNodesTest,
                         ::testing::Values(1, 2, 4, 8));

TEST_P(CbNodesTest, WriteProducesIdenticalBytesToFullAggregation) {
  const int cb = GetParam();
  const int P = 8;
  auto runWith = [&](int cb_nodes) {
    fs::Filesystem fsys(fsCfg());
    mpi::runJob(job(P), [&](mpi::Comm& comm) {
      MpioConfig mc;
      mc.cb_nodes = cb_nodes;
      MpioFile f =
          MpioFile::open(comm, fsys, "cb.dat", fs::kWrite | fs::kCreate, mc);
      std::vector<std::int32_t> data(64);
      std::iota(data.begin(), data.end(), comm.rank() * 1000);
      // Interleaved: rank r writes 64 ints strided by P.
      auto e = mpi::Datatype::int32().commit();
      auto ft = mpi::Datatype::vector(64, 1, P, mpi::Datatype::int32()).commit();
      f.setView(comm.rank() * 4, e, ft);
      f.writeAtAll(0, data.data(), 256);
      f.close();
    });
    std::vector<std::byte> all(static_cast<std::size_t>(P) * 256);
    fsys.peek("cb.dat", 0, all);
    return all;
  };
  EXPECT_EQ(runWith(cb), runWith(0));
}

TEST_P(CbNodesTest, ReadReturnsWrittenData) {
  const int cb = GetParam();
  const int P = 8;
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    MpioConfig mc;
    mc.cb_nodes = cb;
    MpioFile f = MpioFile::open(comm, fsys, "cbr.dat",
                                fs::kRead | fs::kWrite | fs::kCreate, mc);
    std::vector<std::byte> data(128);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::byte>((comm.rank() * 7 + i) % 251);
    }
    f.writeAtAll(comm.rank() * 128, data.data(), 128);
    comm.barrier();
    std::vector<std::byte> got(128);
    f.readAtAll(comm.rank() * 128, got.data(), 128);
    EXPECT_EQ(got, data);
    f.close();
  });
}

TEST(CbNodesTest2, OnlyAggregatorsIssueFsRequests) {
  const int P = 8, cb = 2;
  fs::Filesystem fsys(fsCfg());
  std::int64_t agg_requests = 0, non_agg_requests = 0;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    MpioConfig mc;
    mc.cb_nodes = cb;
    MpioFile f =
        MpioFile::open(comm, fsys, "agg.dat", fs::kWrite | fs::kCreate, mc);
    std::vector<std::byte> data(512, static_cast<std::byte>(comm.rank()));
    const TwoPhaseStats st = f.writeAtAll(comm.rank() * 512, data.data(), 512);
    // Aggregators are ranks 0 and 4 (stride = P / cb = 4).
    if (comm.rank() % 4 == 0) {
      if (comm.rank() == 0) agg_requests = st.fs_requests;
      EXPECT_GT(st.aggregator_buffer, 0);
    } else {
      if (comm.rank() == 1) non_agg_requests = st.fs_requests;
      EXPECT_EQ(st.aggregator_buffer, 0);
    }
    f.close();
  });
  EXPECT_GT(agg_requests, 0);
  EXPECT_EQ(non_agg_requests, 0);
}

TEST(CbNodesTest2, AggregatorBufferGrowsWithFewerAggregators) {
  const int P = 8;
  auto bufferOfRankZero = [&](int cb) {
    fs::Filesystem fsys(fsCfg());
    Bytes buffer = 0;
    mpi::runJob(job(P), [&](mpi::Comm& comm) {
      MpioConfig mc;
      mc.cb_nodes = cb;
      MpioFile f =
          MpioFile::open(comm, fsys, "g.dat", fs::kWrite | fs::kCreate, mc);
      std::vector<std::byte> data(256, std::byte{1});
      const TwoPhaseStats st =
          f.writeAtAll(comm.rank() * 256, data.data(), 256);
      if (comm.rank() == 0) buffer = st.aggregator_buffer;
      f.close();
    });
    return buffer;
  };
  EXPECT_EQ(bufferOfRankZero(2), 4 * bufferOfRankZero(0));
}

}  // namespace
}  // namespace tcio::io
