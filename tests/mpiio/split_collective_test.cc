// Split collectives (MPI_File_write_all_begin/_end) and hint parsing.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/runtime.h"
#include "mpiio/file.h"

namespace tcio::io {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 2;
  c.stripe_size = 2048;
  return c;
}

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

TEST(SplitCollectiveTest, BeginEndWritesLikePlainCollective) {
  const int P = 4;
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    MpioFile f = MpioFile::open(comm, fsys, "sc.dat",
                                fs::kWrite | fs::kCreate);
    std::vector<std::int32_t> data(16);
    std::iota(data.begin(), data.end(), comm.rank() * 100);
    f.writeAtAllBegin(comm.rank() * 64, data.data(), 64);
    // ... overlap "computation" here ...
    comm.proc().advance(0.001);
    const TwoPhaseStats st = f.writeAtAllEnd();
    EXPECT_GT(st.aggregator_buffer, 0);
    f.close();
  });
  std::int32_t v = 0;
  fsys.peek("sc.dat", 64 * 2 + 4, {reinterpret_cast<std::byte*>(&v), 4});
  EXPECT_EQ(v, 201);
}

TEST(SplitCollectiveTest, ReadBeginEndRoundTrip) {
  const int P = 2;
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    MpioFile f = MpioFile::open(comm, fsys, "scr.dat",
                                fs::kRead | fs::kWrite | fs::kCreate);
    std::vector<std::byte> data(128, static_cast<std::byte>(comm.rank() + 1));
    f.writeAtAll(comm.rank() * 128, data.data(), 128);
    comm.barrier();
    std::vector<std::byte> got(128);
    f.readAtAllBegin(comm.rank() * 128, got.data(), 128);
    f.readAtAllEnd();
    EXPECT_EQ(got, data);
    f.close();
  });
}

TEST(SplitCollectiveTest, DoubleBeginRejected) {
  fs::Filesystem fsys(fsCfg());
  EXPECT_THROW(
      mpi::runJob(job(1),
                  [&](mpi::Comm& comm) {
                    MpioFile f = MpioFile::open(comm, fsys, "d.dat",
                                                fs::kWrite | fs::kCreate);
                    int v = 0;
                    f.writeAtAllBegin(0, &v, 4);
                    f.writeAtAllBegin(4, &v, 4);
                  }),
      Error);
}

TEST(SplitCollectiveTest, EndWithoutBeginRejected) {
  fs::Filesystem fsys(fsCfg());
  EXPECT_THROW(
      mpi::runJob(job(1),
                  [&](mpi::Comm& comm) {
                    MpioFile f = MpioFile::open(comm, fsys, "e.dat",
                                                fs::kWrite | fs::kCreate);
                    f.writeAtAllEnd();
                  }),
      Error);
}

TEST(SplitCollectiveTest, MismatchedKindRejected) {
  fs::Filesystem fsys(fsCfg());
  EXPECT_THROW(
      mpi::runJob(job(1),
                  [&](mpi::Comm& comm) {
                    MpioFile f = MpioFile::open(
                        comm, fsys, "m.dat",
                        fs::kRead | fs::kWrite | fs::kCreate);
                    int v = 0;
                    f.writeAtAllBegin(0, &v, 4);
                    f.readAtAllEnd();
                  }),
      Error);
}

TEST(HintsTest, ParsesRomioStyleHints) {
  const MpioConfig cfg =
      parseHints("cb_nodes=4;romio_ds_write=disable;sieve_buffer=1048576");
  EXPECT_EQ(cfg.cb_nodes, 4);
  EXPECT_FALSE(cfg.enable_data_sieving);
  EXPECT_EQ(cfg.sieve_buffer, 1048576);
}

TEST(HintsTest, EmptyAndAutomaticKeepDefaults) {
  const MpioConfig base;
  const MpioConfig cfg = parseHints("romio_ds_read=automatic;", base);
  EXPECT_EQ(cfg.enable_data_sieving, base.enable_data_sieving);
  EXPECT_EQ(cfg.cb_nodes, base.cb_nodes);
}

TEST(HintsTest, UnknownHintThrows) {
  EXPECT_THROW(parseHints("striping_unit=65536"), Error);
}

TEST(HintsTest, MalformedHintThrows) {
  EXPECT_THROW(parseHints("cb_nodes"), Error);
}

}  // namespace
}  // namespace tcio::io
