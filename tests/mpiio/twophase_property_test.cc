// Property tests for the two-phase (OCIO) path: random non-overlapping
// access patterns must produce the same bytes as a sequential reference, and
// collective reads must invert collective writes, across process counts and
// aggregator configurations.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "mpi/runtime.h"
#include "mpiio/file.h"

namespace tcio::io {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 4;
  c.stripe_size = 1024;
  return c;
}

struct Piece {
  Offset off;
  Bytes len;
  int rank;
};

/// Random disjoint partition of [0, total) among P ranks, with holes.
std::vector<Piece> randomPieces(std::uint64_t seed, int P, Bytes total) {
  Rng rng(seed);
  std::vector<Piece> pieces;
  Offset cur = 0;
  while (cur < total) {
    const Bytes len = std::min<Bytes>(1 + rng.uniformInt(0, 300), total - cur);
    if (rng.uniform() < 0.8) {  // 20% holes
      pieces.push_back({cur, len, static_cast<int>(rng.uniformInt(0, P - 1))});
    }
    cur += len;
  }
  return pieces;
}

std::byte expected(Offset off, int rank) {
  return static_cast<std::byte>((rank * 41 + off * 7 + 1) % 251);
}

class TwoPhasePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoPhasePropertyTest,
    ::testing::Combine(::testing::Values(2, 5, 8),      // ranks
                       ::testing::Values(0, 2),          // cb_nodes
                       ::testing::Values(11u, 22u, 33u)  // pattern seed
                       ));

TEST_P(TwoPhasePropertyTest, CollectiveWriteMatchesReference) {
  const auto [P, cb, seed] = GetParam();
  const Bytes total = 20000;
  const auto pieces = randomPieces(seed, P, total);

  std::vector<std::byte> reference(static_cast<std::size_t>(total),
                                   std::byte{0});
  Bytes max_end = 0;
  for (const Piece& p : pieces) {
    for (Bytes i = 0; i < p.len; ++i) {
      reference[static_cast<std::size_t>(p.off + i)] =
          expected(p.off + i, p.rank);
    }
    max_end = std::max(max_end, p.off + p.len);
  }

  fs::Filesystem fsys(fsCfg());
  mpi::JobConfig jc;
  jc.num_ranks = P;
  mpi::runJob(jc, [&, P = P, cb = cb](mpi::Comm& comm) {
    MpioConfig mc;
    mc.cb_nodes = cb;
    MpioFile f =
        MpioFile::open(comm, fsys, "prop.dat", fs::kWrite | fs::kCreate, mc);
    // Build this rank's payload and an hindexed view covering its pieces.
    std::vector<Bytes> lens;
    std::vector<Offset> displs;
    std::vector<std::byte> payload;
    for (const Piece& p : pieces) {
      if (p.rank != comm.rank()) continue;
      lens.push_back(p.len);
      displs.push_back(p.off);
      for (Bytes i = 0; i < p.len; ++i) {
        payload.push_back(expected(p.off + i, p.rank));
      }
    }
    if (!lens.empty()) {
      auto ft = mpi::Datatype::hindexed(lens, displs).commit();
      auto e = mpi::Datatype::byte().commit();
      f.setView(0, e, ft);
    }
    f.writeAtAll(0, payload.data(), static_cast<Bytes>(payload.size()));
    f.close();
  });

  std::vector<std::byte> got(static_cast<std::size_t>(max_end));
  fsys.peek("prop.dat", 0, got);
  for (Offset i = 0; i < max_end; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)],
              reference[static_cast<std::size_t>(i)])
        << "seed " << seed << " offset " << i;
  }
}

TEST_P(TwoPhasePropertyTest, CollectiveReadInvertsCollectiveWrite) {
  const auto [P, cb, seed] = GetParam();
  const Bytes total = 12000;
  const auto pieces = randomPieces(seed + 100, P, total);

  fs::Filesystem fsys(fsCfg());
  mpi::JobConfig jc;
  jc.num_ranks = P;
  mpi::runJob(jc, [&, cb = cb](mpi::Comm& comm) {
    MpioConfig mc;
    mc.cb_nodes = cb;
    MpioFile f = MpioFile::open(comm, fsys, "inv.dat",
                                fs::kRead | fs::kWrite | fs::kCreate, mc);
    std::vector<Bytes> lens;
    std::vector<Offset> displs;
    std::vector<std::byte> payload;
    for (const Piece& p : pieces) {
      if (p.rank != comm.rank()) continue;
      lens.push_back(p.len);
      displs.push_back(p.off);
      for (Bytes i = 0; i < p.len; ++i) {
        payload.push_back(expected(p.off + i, p.rank));
      }
    }
    if (!lens.empty()) {
      auto ft = mpi::Datatype::hindexed(lens, displs).commit();
      f.setView(0, mpi::Datatype::byte().commit(), ft);
    }
    f.writeAtAll(0, payload.data(), static_cast<Bytes>(payload.size()));
    comm.barrier();
    std::vector<std::byte> got(payload.size());
    f.readAtAll(0, got.data(), static_cast<Bytes>(got.size()));
    EXPECT_EQ(got, payload);
    f.close();
  });
}

}  // namespace
}  // namespace tcio::io
