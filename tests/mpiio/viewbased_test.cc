// View-based collective I/O: byte-equivalence with two-phase, metadata
// savings, and the cached-view machinery.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/runtime.h"
#include "mpiio/file.h"

namespace tcio::io {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 3;
  c.stripe_size = 2048;
  return c;
}

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

/// The Fig. 2 pattern driven through either collective implementation.
std::vector<std::byte> runPattern(int P, std::int64_t len, bool view_based,
                                  int cb_nodes = 0) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    MpioConfig mc;
    mc.view_based = view_based;
    mc.cb_nodes = cb_nodes;
    MpioFile f = MpioFile::open(comm, fsys, "vb.dat",
                                fs::kRead | fs::kWrite | fs::kCreate, mc);
    const Bytes block = 12;
    auto e = mpi::Datatype::contiguous(block, mpi::Datatype::byte()).commit();
    auto ft = mpi::Datatype::vector(len, 1, P, e).commit();
    f.setView(comm.rank() * block, e, ft);
    std::vector<std::byte> buf(static_cast<std::size_t>(len * block));
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<std::byte>((comm.rank() * 13 + i) % 251);
    }
    f.writeAtAll(0, buf.data(), static_cast<Bytes>(buf.size()));
    comm.barrier();
    std::vector<std::byte> got(buf.size());
    f.readAtAll(0, got.data(), static_cast<Bytes>(got.size()));
    TCIO_CHECK_MSG(got == buf, "view-based read-back mismatch");
    f.close();
  });
  std::vector<std::byte> contents(
      static_cast<std::size_t>(fsys.peekSize("vb.dat")));
  fsys.peek("vb.dat", 0, contents);
  return contents;
}

class ViewBasedTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, ViewBasedTest, ::testing::Values(2, 4, 7));

TEST_P(ViewBasedTest, MatchesTwoPhaseByteForByte) {
  const int P = GetParam();
  EXPECT_EQ(runPattern(P, 32, true), runPattern(P, 32, false));
}

TEST_P(ViewBasedTest, WorksWithCollectiveBuffering) {
  const int P = GetParam();
  EXPECT_EQ(runPattern(P, 16, true, /*cb_nodes=*/2),
            runPattern(P, 16, false));
}

TEST(ViewBasedTest2, MovesLessMetadataThanTwoPhase) {
  // Count network messages: after the one-time view exchange, view-based
  // collectives skip two alltoallv rounds (sizes + block metadata).
  auto messagesFor = [&](bool view_based) {
    fs::Filesystem fsys(fsCfg());
    mpi::JobConfig jc = job(8);
    std::int64_t msgs = 0;
    {
      sim::Engine::Config ec;
      ec.num_ranks = jc.num_ranks;
      ec.seed = jc.seed;
      sim::Engine engine(ec);
      jc.net.num_ranks = jc.num_ranks;
      net::Network network(jc.net);
      mpi::World world(engine, network, jc.mpi);
      engine.run([&](sim::Proc& proc) {
        mpi::Comm comm(world, proc);
        MpioConfig mc;
        mc.view_based = view_based;
        MpioFile f = MpioFile::open(comm, fsys, "meta.dat",
                                    fs::kWrite | fs::kCreate, mc);
        auto e = mpi::Datatype::contiguous(12, mpi::Datatype::byte()).commit();
        auto ft = mpi::Datatype::vector(64, 1, 8, e).commit();
        f.setView(comm.rank() * 12, e, ft);
        std::vector<std::byte> buf(64 * 12, std::byte{1});
        const std::int64_t before = network.messageCount();
        // Ten collective calls amortize the one-time view exchange.
        for (int i = 0; i < 10; ++i) {
          f.writeAtAll(0, buf.data(), static_cast<Bytes>(buf.size()));
        }
        if (comm.rank() == 0) msgs = network.messageCount() - before;
        f.close();
      });
    }
    return msgs;
  };
  const auto vb = messagesFor(true);
  const auto tp = messagesFor(false);
  EXPECT_LT(vb, tp / 2) << "view-based should move far fewer messages";
}

TEST(ViewBasedTest2, IdentityViewsSupported) {
  const int P = 4;
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    MpioConfig mc;
    mc.view_based = true;
    MpioFile f = MpioFile::open(comm, fsys, "id.dat",
                                fs::kWrite | fs::kCreate, mc);
    // Identity views with per-rank displacements via a trivial filetype.
    auto e = mpi::Datatype::byte().commit();
    auto ft = mpi::Datatype::contiguous(64, mpi::Datatype::byte()).commit();
    f.setView(comm.rank() * 64, e, ft);
    std::vector<std::byte> buf(64, static_cast<std::byte>(comm.rank() + 1));
    f.writeAtAll(0, buf.data(), 64);
    f.close();
  });
  for (int r = 0; r < P; ++r) {
    std::byte b{};
    fsys.peek("id.dat", r * 64 + 5, {&b, 1});
    EXPECT_EQ(b, static_cast<std::byte>(r + 1));
  }
}

TEST(ViewBasedTest2, NonZeroOffsetRejected) {
  fs::Filesystem fsys(fsCfg());
  EXPECT_THROW(
      mpi::runJob(job(2),
                  [&](mpi::Comm& comm) {
                    MpioConfig mc;
                    mc.view_based = true;
                    MpioFile f = MpioFile::open(comm, fsys, "bad.dat",
                                                fs::kWrite | fs::kCreate, mc);
                    auto e = mpi::Datatype::byte().commit();
                    auto ft =
                        mpi::Datatype::contiguous(8, mpi::Datatype::byte())
                            .commit();
                    f.setView(comm.rank() * 8, e, ft);
                    std::byte b{};
                    f.writeAtAll(4, &b, 1);  // offset != 0
                    f.close();
                  }),
      Error);
}

TEST(ViewBasedTest2, MismatchedSizesRejected) {
  fs::Filesystem fsys(fsCfg());
  EXPECT_THROW(
      mpi::runJob(job(2),
                  [&](mpi::Comm& comm) {
                    MpioConfig mc;
                    mc.view_based = true;
                    MpioFile f = MpioFile::open(comm, fsys, "mm.dat",
                                                fs::kWrite | fs::kCreate, mc);
                    auto e = mpi::Datatype::byte().commit();
                    auto ft =
                        mpi::Datatype::contiguous(16, mpi::Datatype::byte())
                            .commit();
                    f.setView(comm.rank() * 16, e, ft);
                    std::vector<std::byte> buf(16, std::byte{1});
                    // Rank 1 writes a different size.
                    f.writeAtAll(0, buf.data(), comm.rank() == 0 ? 16 : 8);
                    f.close();
                  }),
      Error);
}

}  // namespace
}  // namespace tcio::io
