#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tcio {
namespace {

TEST(TableTest, PrintsHeaderAndAlignedRows) {
  Table t("fig5.write");
  t.header({"procs", "TCIO", "OCIO"});
  t.row({"64", "300.5", "420.25"});
  t.row({"1024", "900", "350"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== fig5.write =="), std::string::npos);
  EXPECT_NE(out.find("fig5.write | procs"), std::string::npos);
  EXPECT_NE(out.find("1024"), std::string::npos);
}

TEST(TableTest, RowfFormatsDoubles) {
  Table t("x");
  t.rowf({1.23456, 2.0}, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_NE(os.str().find("2.00"), std::string::npos);
}

TEST(TableTest, FormatBytesHumanReadable) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(768LL * 1024 * 1024), "768 MiB");
  EXPECT_EQ(formatBytes(48LL * 1024 * 1024 * 1024), "48 GiB");
  EXPECT_EQ(formatBytes(1536), "1.5 KiB");
}

TEST(TableTest, FormatDoublePrecision) {
  EXPECT_EQ(formatDouble(3.14159, 3), "3.142");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace tcio
