#include "common/error.h"

#include <gtest/gtest.h>

namespace tcio {
namespace {

TEST(ErrorTest, CheckPassesOnTrue) {
  EXPECT_NO_THROW(TCIO_CHECK(1 + 1 == 2));
}

TEST(ErrorTest, CheckThrowsOnFalse) {
  EXPECT_THROW(TCIO_CHECK(false), Error);
}

TEST(ErrorTest, CheckMessageContainsExpressionAndLocation) {
  try {
    TCIO_CHECK_MSG(2 < 1, "custom context");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("error_test.cc"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

TEST(ErrorTest, OutOfMemoryBudgetCarriesCounts) {
  OutOfMemoryBudget e("oom", 100, 40);
  EXPECT_EQ(e.requested_bytes, 100);
  EXPECT_EQ(e.available_bytes, 40);
  EXPECT_STREQ(e.what(), "oom");
}

TEST(ErrorTest, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw FsError("fs"), Error);
  EXPECT_THROW(throw MpiError("mpi"), Error);
  EXPECT_THROW(throw DeadlockError("dl"), Error);
}

}  // namespace
}  // namespace tcio
