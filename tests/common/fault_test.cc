#include "common/fault.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcio {
namespace {

TEST(FaultPlanTest, DisabledPlanInjectsNothing) {
  FaultPlan plan(FaultConfig{});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(plan.nextFsRequest(FaultPlan::FsVerb::kWrite, i % 4, 0.0),
              FaultPlan::FsOutcome::kNone);
    EXPECT_EQ(plan.nextRmaPayload(), 0.0);
  }
  EXPECT_EQ(plan.transientFaultsInjected(), 0);
  EXPECT_EQ(plan.rmaDropsInjected(), 0);
}

TEST(FaultPlanTest, SameSeedSameSchedule) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 7;
  cfg.fs_transient_write_rate = 0.1;
  cfg.fs_transient_read_rate = 0.05;
  cfg.rma_drop_rate = 0.2;
  const auto run = [&cfg] {
    FaultPlan plan(cfg);
    std::vector<int> outcomes;
    for (int i = 0; i < 500; ++i) {
      const auto verb = i % 2 == 0 ? FaultPlan::FsVerb::kWrite
                                   : FaultPlan::FsVerb::kRead;
      outcomes.push_back(
          static_cast<int>(plan.nextFsRequest(verb, i % 3, 0.0)));
      outcomes.push_back(plan.nextRmaPayload() > 0 ? 1 : 0);
    }
    outcomes.push_back(static_cast<int>(plan.transientFaultsInjected()));
    outcomes.push_back(static_cast<int>(plan.rmaDropsInjected()));
    return outcomes;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultPlanTest, DifferentSeedsDifferentSchedules) {
  FaultConfig a;
  a.enabled = true;
  a.seed = 1;
  a.fs_transient_write_rate = 0.1;
  FaultConfig b = a;
  b.seed = 2;
  FaultPlan pa(a), pb(b);
  std::vector<int> oa, ob;
  for (int i = 0; i < 500; ++i) {
    oa.push_back(
        static_cast<int>(pa.nextFsRequest(FaultPlan::FsVerb::kWrite, 0, 0.0)));
    ob.push_back(
        static_cast<int>(pb.nextFsRequest(FaultPlan::FsVerb::kWrite, 0, 0.0)));
  }
  EXPECT_NE(oa, ob);
}

TEST(FaultPlanTest, SaltsSeparateLayerStreams) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 5;
  cfg.fs_transient_write_rate = 0.3;
  cfg.rma_drop_rate = 0.3;
  FaultPlan fs_plan(cfg, FaultPlan::kFsSalt);
  FaultPlan net_plan(cfg, FaultPlan::kNetSalt);
  std::vector<int> fs_draws, net_draws;
  for (int i = 0; i < 300; ++i) {
    fs_draws.push_back(static_cast<int>(
        fs_plan.nextFsRequest(FaultPlan::FsVerb::kWrite, 0, 0.0)));
    net_draws.push_back(net_plan.nextRmaPayload() > 0 ? 1 : 0);
  }
  // Different salts must give uncorrelated streams, not mirrored ones.
  std::vector<int> fs_as_hits;
  for (int v : fs_draws) {
    fs_as_hits.push_back(
        v == static_cast<int>(FaultPlan::FsOutcome::kTransient) ? 1 : 0);
  }
  EXPECT_NE(fs_as_hits, net_draws);
}

TEST(FaultPlanTest, PermanentOstFailureIsStickyAndDominates) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.fail_ost = 2;
  cfg.fail_ost_after_requests = 3;
  cfg.fs_transient_write_rate = 1.0;  // would fire on every request
  FaultPlan plan(cfg);
  // Before the threshold the dead OST still serves (transients may fire).
  EXPECT_FALSE(plan.ostFailed(2));
  for (int i = 0; i < 3; ++i) {
    plan.nextFsRequest(FaultPlan::FsVerb::kWrite, 0, 0.0);
  }
  EXPECT_TRUE(plan.ostFailed(2));
  EXPECT_FALSE(plan.ostFailed(1));
  // Permanent failure wins over the (certain) transient draw.
  EXPECT_EQ(plan.nextFsRequest(FaultPlan::FsVerb::kWrite, 2, 0.0),
            FaultPlan::FsOutcome::kOstFailed);
  EXPECT_EQ(plan.nextFsRequest(FaultPlan::FsVerb::kRead, 2, 0.0),
            FaultPlan::FsOutcome::kOstFailed);
}

TEST(FaultPlanTest, StragglerMultiplierAppliesOnlyToThatOst) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.straggler_ost = 1;
  cfg.straggler_multiplier = 8.0;
  FaultPlan plan(cfg);
  EXPECT_DOUBLE_EQ(plan.serviceMultiplier(1), 8.0);
  EXPECT_DOUBLE_EQ(plan.serviceMultiplier(0), 1.0);
  EXPECT_DOUBLE_EQ(plan.serviceMultiplier(2), 1.0);
}

TEST(FaultPlanTest, ActiveAfterGatesFaults) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.fs_transient_write_rate = 1.0;
  cfg.active_after = 10.0;
  FaultPlan plan(cfg);
  EXPECT_EQ(plan.nextFsRequest(FaultPlan::FsVerb::kWrite, 0, 1.0),
            FaultPlan::FsOutcome::kNone);
  EXPECT_EQ(plan.nextFsRequest(FaultPlan::FsVerb::kWrite, 0, 11.0),
            FaultPlan::FsOutcome::kTransient);
}

TEST(FaultPlanTest, OneShotWriteShimFiresExactlyOnce) {
  FaultPlan plan(FaultConfig{});
  plan.scheduleOneShotWrite(2);
  EXPECT_FALSE(plan.consumeOneShotWrite());  // call 0
  EXPECT_FALSE(plan.consumeOneShotWrite());  // call 1
  EXPECT_TRUE(plan.consumeOneShotWrite());   // call 2 faults
  EXPECT_FALSE(plan.consumeOneShotWrite());  // consumed
  EXPECT_FALSE(plan.consumeOneShotWrite());
}

TEST(FaultPlanTest, RmaDropDelayIsConfigured) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.rma_drop_rate = 1.0;
  cfg.rma_drop_delay = 3.5e-4;
  FaultPlan plan(cfg);
  EXPECT_DOUBLE_EQ(plan.nextRmaPayload(), 3.5e-4);
  EXPECT_EQ(plan.rmaDropsInjected(), 1);
}

TEST(FaultPlanTest, OstRecoveryClearsPermanentFailure) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.fail_ost = 1;
  cfg.fail_ost_after_requests = 2;
  cfg.recover_ost_after_requests = 5;
  FaultPlan plan(cfg);
  EXPECT_FALSE(plan.ostFailed(1));  // not yet failed
  for (int i = 0; i < 3; ++i) {
    plan.nextFsRequest(FaultPlan::FsVerb::kWrite, 0, 0.0);
  }
  EXPECT_TRUE(plan.ostFailed(1));   // between the thresholds: dead
  EXPECT_FALSE(plan.ostRecovered());
  for (int i = 0; i < 3; ++i) {
    plan.nextFsRequest(FaultPlan::FsVerb::kWrite, 0, 0.0);
  }
  EXPECT_TRUE(plan.ostRecovered());  // failover pair rejoined
  EXPECT_FALSE(plan.ostFailed(1));   // routing home is legal again
}

TEST(FaultPlanTest, MdsFaultRatesAreSeededAndCounted) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 9;
  cfg.mds_open_fail_rate = 0.5;
  cfg.mds_close_fail_rate = 0.0;
  const auto draw = [&cfg] {
    FaultPlan plan(cfg);
    std::vector<bool> outs;
    for (int i = 0; i < 64; ++i) {
      outs.push_back(plan.nextMdsOp(FaultPlan::MdsVerb::kOpen));
      // Zero-rate verbs never fault and never consume an RNG draw that
      // would perturb the open stream.
      EXPECT_FALSE(plan.nextMdsOp(FaultPlan::MdsVerb::kClose));
    }
    return std::pair(outs, plan.mdsFaultsInjected());
  };
  const auto a = draw();
  const auto b = draw();
  EXPECT_EQ(a, b);               // seed-deterministic
  EXPECT_GT(a.second, 0);        // some opens faulted
  EXPECT_LT(a.second, 64);       // but not all
}

TEST(CrashPlanTest, FiresExactlyOnceAtScheduledOccurrence) {
  FaultConfig cfg;
  cfg.crashes.push_back({/*rank=*/1, CrashPoint::kAtCollective, /*after=*/2});
  CrashPlan plan(cfg, /*rank=*/1);
  EXPECT_TRUE(plan.armed());
  EXPECT_FALSE(plan.fires(CrashPoint::kMidRma));  // other points don't count
  EXPECT_FALSE(plan.fires(CrashPoint::kAtCollective));  // occurrence 0
  EXPECT_FALSE(plan.fires(CrashPoint::kAtCollective));  // occurrence 1
  EXPECT_TRUE(plan.fires(CrashPoint::kAtCollective));   // occurrence 2: dies
  EXPECT_FALSE(plan.fires(CrashPoint::kAtCollective));  // already dead
}

TEST(CrashPlanTest, ScheduleFiltersByRank) {
  FaultConfig cfg;
  cfg.crashes.push_back({/*rank=*/3, CrashPoint::kMidClose, /*after=*/0});
  CrashPlan victim(cfg, /*rank=*/3);
  CrashPlan bystander(cfg, /*rank=*/0);
  EXPECT_TRUE(victim.armed());
  EXPECT_FALSE(bystander.armed());
  EXPECT_FALSE(bystander.fires(CrashPoint::kMidClose));
  EXPECT_TRUE(victim.fires(CrashPoint::kMidClose));
}

TEST(CrashPlanTest, TornBytesDeterministicAndInRange) {
  FaultConfig cfg;
  cfg.seed = 21;
  cfg.crashes.push_back({/*rank=*/0, CrashPoint::kMidJournal, /*after=*/0});
  const auto draw = [&cfg](Rank rank) {
    CrashPlan plan(cfg, rank);
    std::vector<std::int64_t> torn;
    for (int i = 0; i < 32; ++i) torn.push_back(plan.tornBytes(100));
    return torn;
  };
  const auto a = draw(0);
  EXPECT_EQ(a, draw(0));   // same (seed, rank): same torn prefixes
  EXPECT_NE(a, draw(1));   // rank-salted stream
  for (const std::int64_t t : a) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 100);  // a torn write never completes the frame
  }
  CrashPlan plan(cfg, 0);
  EXPECT_EQ(plan.tornBytes(0), 0);
}

TEST(CorruptionPlanTest, FiresExactlyOnceAtScheduledOccurrence) {
  FaultConfig cfg;
  cfg.corruptions.push_back(
      {/*rank=*/2, CorruptSite::kWindow, /*after=*/2});
  CorruptionPlan plan(cfg, /*rank=*/2);
  EXPECT_TRUE(plan.armed());
  EXPECT_FALSE(plan.fires(CorruptSite::kStagingFrame));  // other sites
  EXPECT_FALSE(plan.fires(CorruptSite::kWindow));  // occurrence 0
  EXPECT_FALSE(plan.fires(CorruptSite::kWindow));  // occurrence 1
  EXPECT_TRUE(plan.fires(CorruptSite::kWindow));   // occurrence 2: flips
  EXPECT_FALSE(plan.fires(CorruptSite::kWindow));  // already fired
}

TEST(CorruptionPlanTest, ScheduleFiltersByRank) {
  FaultConfig cfg;
  cfg.corruptions.push_back(
      {/*rank=*/1, CorruptSite::kStagingFrame, /*after=*/0});
  CorruptionPlan victim(cfg, /*rank=*/1);
  CorruptionPlan bystander(cfg, /*rank=*/0);
  EXPECT_TRUE(victim.armed());
  EXPECT_FALSE(bystander.armed());
  EXPECT_FALSE(bystander.fires(CorruptSite::kStagingFrame));
  EXPECT_TRUE(victim.fires(CorruptSite::kStagingFrame));
}

TEST(CorruptionPlanTest, FlipBitChangesExactlyOneBitDeterministically) {
  FaultConfig cfg;
  cfg.seed = 33;
  const auto draw = [&cfg](Rank rank) {
    CorruptionPlan plan(cfg, rank);
    std::vector<std::byte> buf(256, std::byte{0});
    const std::int64_t off = plan.flipBit(buf);
    return std::pair(off, buf);
  };
  const auto [off_a, buf_a] = draw(0);
  const auto [off_b, buf_b] = draw(0);
  EXPECT_EQ(off_a, off_b);  // same (seed, rank): same flip
  EXPECT_EQ(buf_a, buf_b);
  ASSERT_GE(off_a, 0);
  ASSERT_LT(off_a, 256);
  int changed_bytes = 0;
  for (std::size_t i = 0; i < buf_a.size(); ++i) {
    if (buf_a[i] != std::byte{0}) {
      ++changed_bytes;
      EXPECT_EQ(static_cast<std::size_t>(off_a), i);
      const auto v = std::to_integer<unsigned>(buf_a[i]);
      EXPECT_EQ(v & (v - 1), 0u);  // exactly one bit set
    }
  }
  EXPECT_EQ(changed_bytes, 1);
  // Rank-salted stream: a different rank flips elsewhere (or another bit).
  const auto [off_c, buf_c] = draw(5);
  EXPECT_TRUE(off_c != off_a || buf_c != buf_a);
}

TEST(CorruptionPlanTest, FlipBitOnEmptyBufferIsANoOp) {
  CorruptionPlan plan(FaultConfig{}, /*rank=*/0);
  std::vector<std::byte> empty;
  EXPECT_EQ(plan.flipBit(empty), -1);
}

TEST(CorruptionPlanTest, ArmingDoesNotPerturbFaultPlanStreams) {
  // The corruption stream is salted separately: arming bit flips must not
  // shift the transient-fault schedule of a clean run (determinism parity).
  FaultConfig clean;
  clean.enabled = true;
  clean.seed = 11;
  clean.fs_transient_write_rate = 0.25;
  FaultConfig armed = clean;
  armed.corruptions.push_back(
      {/*rank=*/-1, CorruptSite::kStoredBlock, /*after=*/0});
  const auto draws = [](const FaultConfig& cfg) {
    FaultPlan plan(cfg, FaultPlan::kFsSalt);
    std::vector<int> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back(
          static_cast<int>(plan.nextFsRequest(FaultPlan::FsVerb::kWrite,
                                              i % 4, 0.0)));
    }
    return out;
  };
  EXPECT_EQ(draws(clean), draws(armed));
}

}  // namespace
}  // namespace tcio
