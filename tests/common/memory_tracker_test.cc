#include "common/memory_tracker.h"

#include <gtest/gtest.h>

namespace tcio {
namespace {

TEST(MemoryTrackerTest, TracksUsedAndPeak) {
  MemoryTracker t(1000);
  t.allocate(300, "a");
  t.allocate(400, "b");
  EXPECT_EQ(t.used(), 700);
  EXPECT_EQ(t.peak(), 700);
  t.release(400);
  EXPECT_EQ(t.used(), 300);
  EXPECT_EQ(t.peak(), 700);
}

TEST(MemoryTrackerTest, ThrowsWhenBudgetExceeded) {
  MemoryTracker t(100);
  t.allocate(60, "a");
  try {
    t.allocate(50, "aggregator buffer");
    FAIL() << "expected OutOfMemoryBudget";
  } catch (const OutOfMemoryBudget& e) {
    EXPECT_EQ(e.requested_bytes, 50);
    EXPECT_EQ(e.available_bytes, 40);
    EXPECT_NE(std::string(e.what()).find("aggregator buffer"),
              std::string::npos);
  }
  // Failed allocation must not be charged.
  EXPECT_EQ(t.used(), 60);
}

TEST(MemoryTrackerTest, ZeroBudgetMeansUnlimited) {
  MemoryTracker t(0);
  EXPECT_NO_THROW(t.allocate(1'000'000'000, "huge"));
}

TEST(MemoryTrackerTest, ExactBudgetFits) {
  MemoryTracker t(100);
  EXPECT_NO_THROW(t.allocate(100, "exact"));
  EXPECT_THROW(t.allocate(1, "extra"), OutOfMemoryBudget);
}

TEST(MemoryTrackerTest, ReleaseMoreThanUsedIsAnError) {
  MemoryTracker t(100);
  t.allocate(10, "a");
  EXPECT_THROW(t.release(11), Error);
}

TEST(MemoryTrackerTest, ScopedAllocationReleasesOnDestruction) {
  MemoryTracker t(100);
  {
    ScopedAllocation a(t, 80, "scoped");
    EXPECT_EQ(t.used(), 80);
  }
  EXPECT_EQ(t.used(), 0);
  EXPECT_EQ(t.peak(), 80);
}

TEST(MemoryTrackerTest, ScopedAllocationMoveTransfersOwnership) {
  MemoryTracker t(100);
  {
    ScopedAllocation a(t, 40, "scoped");
    ScopedAllocation b(std::move(a));
    EXPECT_EQ(t.used(), 40);
  }
  EXPECT_EQ(t.used(), 0);
}

TEST(MemoryTrackerTest, ResetPeakTracksFromCurrent) {
  MemoryTracker t(0);
  t.allocate(100, "a");
  t.release(100);
  t.resetPeak();
  EXPECT_EQ(t.peak(), 0);
  t.allocate(10, "b");
  EXPECT_EQ(t.peak(), 10);
}

}  // namespace
}  // namespace tcio
