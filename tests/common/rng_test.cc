#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tcio {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInRangeAndCoversEndpoints) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsApproximatelyMatch) {
  Rng r(5);
  const double mu = 2048.0, sigma = 128.0;
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(mu, sigma);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, mu, 2.0);
  EXPECT_NEAR(std::sqrt(var), sigma, 2.0);
}

TEST(RngTest, NormalIsDeterministicAcrossInstances) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.normal(0, 1), b.normal(0, 1));
  }
}

}  // namespace
}  // namespace tcio
