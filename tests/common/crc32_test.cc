#include "common/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace tcio {
namespace {

std::vector<std::byte> bytesOf(const char* s) {
  std::vector<std::byte> out(std::strlen(s));
  if (!out.empty()) std::memcpy(out.data(), s, out.size());
  return out;
}

TEST(Crc32Test, KnownVectors) {
  // Standard test vector: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32(bytesOf("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(bytesOf("")), 0u);
  EXPECT_EQ(crc32(bytesOf("a")), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const auto all = bytesOf("hello, collective world");
  const std::uint32_t one_shot = crc32(all);
  const std::uint32_t part1 =
      crc32(std::span<const std::byte>(all.data(), 5));
  const std::uint32_t chained = crc32(
      std::span<const std::byte>(all.data() + 5, all.size() - 5), part1);
  EXPECT_EQ(chained, one_shot);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  auto data = bytesOf("checkpoint payload");
  const std::uint32_t before = crc32(data);
  data[7] ^= std::byte{0x01};
  EXPECT_NE(crc32(data), before);
}

}  // namespace
}  // namespace tcio
