#include <gtest/gtest.h>

#include "common/types.h"

namespace tcio {
namespace {

TEST(ExtentTest, SizeAndEmpty) {
  EXPECT_EQ((Extent{0, 10}.size()), 10);
  EXPECT_TRUE((Extent{5, 5}.empty()));
  EXPECT_FALSE((Extent{5, 6}.empty()));
}

TEST(ExtentTest, ContainsIsHalfOpen) {
  Extent e{10, 20};
  EXPECT_FALSE(e.contains(9));
  EXPECT_TRUE(e.contains(10));
  EXPECT_TRUE(e.contains(19));
  EXPECT_FALSE(e.contains(20));
}

TEST(ExtentTest, OverlapCases) {
  Extent a{0, 10};
  EXPECT_TRUE(a.overlaps({5, 15}));
  EXPECT_TRUE(a.overlaps({0, 1}));
  EXPECT_FALSE(a.overlaps({10, 20}));  // touching is not overlapping
  EXPECT_FALSE(a.overlaps({20, 30}));
}

TEST(ExtentTest, IntersectProducesEmptyWhenDisjoint) {
  const Extent r = intersect({0, 10}, {20, 30});
  EXPECT_TRUE(r.empty());
}

TEST(ExtentTest, IntersectOverlapping) {
  const Extent r = intersect({0, 10}, {5, 30});
  EXPECT_EQ(r, (Extent{5, 10}));
}

TEST(ExtentTest, ByteLiterals) {
  EXPECT_EQ(1_KiB, 1024);
  EXPECT_EQ(1_MiB, 1024 * 1024);
  EXPECT_EQ(48_GiB, 48LL * 1024 * 1024 * 1024);
}

TEST(ExtentTest, TimeLiterals) {
  EXPECT_DOUBLE_EQ(2_us, 2e-6);
  EXPECT_DOUBLE_EQ(1.5_ms, 1.5e-3);
}

}  // namespace
}  // namespace tcio
