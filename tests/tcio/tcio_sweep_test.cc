// Parameterized property sweep: TCIO must produce byte-identical files to a
// sequential reference model across process counts, segment sizes, exchange
// modes (one-sided / two-sided / node-aggregated), read laziness, and access
// patterns.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "mpi/runtime.h"
#include "tcio/file.h"

namespace tcio::core {
namespace {

enum class Pattern { kInterleaved, kBlocks, kRandomDisjoint, kStrided };

struct SweepParam {
  int procs;
  Bytes segment;
  bool onesided;
  Pattern pattern;
  bool lazy = true;
  bool node_agg = false;
};

std::string paramName(const ::testing::TestParamInfo<SweepParam>& info) {
  const char* pat = "";
  switch (info.param.pattern) {
    case Pattern::kInterleaved: pat = "interleaved"; break;
    case Pattern::kBlocks: pat = "blocks"; break;
    case Pattern::kRandomDisjoint: pat = "random"; break;
    case Pattern::kStrided: pat = "strided"; break;
  }
  return "P" + std::to_string(info.param.procs) + "_seg" +
         std::to_string(info.param.segment) + (info.param.onesided ? "_1s" : "_2s") +
         "_" + pat + (info.param.lazy ? "" : "_eager") +
         (info.param.node_agg ? "_nodeagg" : "");
}

/// One write operation: (absolute offset, length, owning rank).
struct Op {
  Offset off;
  Bytes len;
  int rank;
};

std::vector<Op> makeOps(const SweepParam& p, Bytes total) {
  std::vector<Op> ops;
  switch (p.pattern) {
    case Pattern::kInterleaved: {
      const Bytes block = 24;
      for (Offset cur = 0; cur + block <= total; cur += block) {
        ops.push_back({cur, block,
                       static_cast<int>((cur / block) % p.procs)});
      }
      break;
    }
    case Pattern::kBlocks: {
      const Bytes per = total / p.procs;
      for (int r = 0; r < p.procs; ++r) {
        ops.push_back({r * per, per, r});
      }
      break;
    }
    case Pattern::kRandomDisjoint: {
      Rng rng(2024);
      Offset cur = 0;
      while (cur < total) {
        const Bytes len = std::min<Bytes>(1 + rng.uniformInt(0, 500),
                                          total - cur);
        ops.push_back({cur, len,
                       static_cast<int>(rng.uniformInt(0, p.procs - 1))});
        cur += len;
      }
      break;
    }
    case Pattern::kStrided: {
      const Bytes piece = 16;
      const Bytes stride = piece * p.procs;
      for (int r = 0; r < p.procs; ++r) {
        for (Offset cur = r * piece; cur + piece <= total; cur += stride) {
          ops.push_back({cur, piece, r});
        }
      }
      break;
    }
  }
  return ops;
}

std::byte expected(Offset off, int rank) {
  return static_cast<std::byte>((rank * 97 + off * 3) % 251);
}

class TcioSweepTest : public ::testing::TestWithParam<SweepParam> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, TcioSweepTest,
    ::testing::Values(
        SweepParam{2, 256, true, Pattern::kInterleaved},
        SweepParam{4, 256, true, Pattern::kInterleaved},
        SweepParam{16, 512, true, Pattern::kInterleaved},
        SweepParam{4, 128, true, Pattern::kBlocks},
        SweepParam{8, 1024, true, Pattern::kBlocks},
        SweepParam{4, 256, true, Pattern::kRandomDisjoint},
        SweepParam{8, 512, true, Pattern::kRandomDisjoint},
        SweepParam{3, 333, true, Pattern::kRandomDisjoint},  // odd sizes
        SweepParam{4, 256, true, Pattern::kStrided},
        SweepParam{16, 256, true, Pattern::kStrided},
        SweepParam{4, 256, false, Pattern::kInterleaved},
        SweepParam{8, 512, false, Pattern::kRandomDisjoint},
        SweepParam{16, 256, false, Pattern::kStrided},
        // Eager-read ablation (requires one-sided independent fetch).
        SweepParam{4, 256, true, Pattern::kInterleaved, /*lazy=*/false},
        SweepParam{8, 512, true, Pattern::kBlocks, /*lazy=*/false},
        // Node aggregation (one-sided + lazy; 4 ranks/node in this sweep).
        SweepParam{8, 256, true, Pattern::kInterleaved, true, /*agg=*/true},
        SweepParam{8, 256, true, Pattern::kStrided, true, /*agg=*/true},
        SweepParam{16, 512, true, Pattern::kInterleaved, true, /*agg=*/true},
        SweepParam{6, 333, true, Pattern::kRandomDisjoint, true, /*agg=*/true},
        SweepParam{4, 128, true, Pattern::kBlocks, true, /*agg=*/true}),
    paramName);

TEST_P(TcioSweepTest, FileMatchesReferenceAndReadsBack) {
  const SweepParam p = GetParam();
  const Bytes total = 16 * 1024;
  const auto ops = makeOps(p, total);

  // Reference model.
  std::vector<std::byte> reference(static_cast<std::size_t>(total),
                                   std::byte{0});
  Bytes written_max = 0;
  for (const Op& op : ops) {
    for (Bytes i = 0; i < op.len; ++i) {
      reference[static_cast<std::size_t>(op.off + i)] =
          expected(op.off + i, op.rank);
    }
    written_max = std::max(written_max, op.off + op.len);
  }

  fs::FsConfig fcfg;
  fcfg.num_osts = 3;
  fcfg.stripe_size = 2048;
  fs::Filesystem fsys(fcfg);
  mpi::JobConfig jc;
  jc.num_ranks = p.procs;
  jc.net.ranks_per_node = 4;  // multi-node topology for the node-agg rows
  mpi::runJob(jc, [&](mpi::Comm& comm) {
    TcioConfig cfg;
    cfg.segment_size = p.segment;
    cfg.segments_per_rank =
        (total + p.segment * p.procs - 1) / (p.segment * p.procs) + 1;
    cfg.use_onesided = p.onesided;
    cfg.lazy_reads = p.lazy;
    cfg.node_aggregation = p.node_agg;
    {
      File f(comm, fsys, "sweep.dat", fs::kWrite | fs::kCreate, cfg);
      std::vector<std::byte> buf;
      for (const Op& op : ops) {
        if (op.rank != comm.rank()) continue;
        buf.resize(static_cast<std::size_t>(op.len));
        for (Bytes i = 0; i < op.len; ++i) {
          buf[static_cast<std::size_t>(i)] = expected(op.off + i, op.rank);
        }
        f.writeAt(op.off, buf.data(), op.len);
      }
      f.close();
    }
    // Read everything back (each rank a different slice).
    {
      File f(comm, fsys, "sweep.dat", fs::kRead, cfg);
      const Bytes per = written_max / comm.size();
      const Offset my_begin = comm.rank() * per;
      const Bytes my_len =
          comm.rank() == comm.size() - 1 ? written_max - my_begin : per;
      std::vector<std::byte> got(static_cast<std::size_t>(my_len));
      if (my_len > 0) f.readAt(my_begin, got.data(), my_len);
      f.fetch();
      for (Bytes i = 0; i < my_len; ++i) {
        ASSERT_EQ(got[static_cast<std::size_t>(i)],
                  reference[static_cast<std::size_t>(my_begin + i)])
            << "read-back mismatch at " << my_begin + i;
      }
      f.close();
    }
  });

  ASSERT_EQ(fsys.peekSize("sweep.dat"), written_max);
  std::vector<std::byte> contents(static_cast<std::size_t>(written_max));
  fsys.peek("sweep.dat", 0, contents);
  for (Offset i = 0; i < written_max; ++i) {
    ASSERT_EQ(contents[static_cast<std::size_t>(i)],
              reference[static_cast<std::size_t>(i)])
        << "file mismatch at " << i;
  }
  // Whole-file checksum: byte-identical regardless of exchange mode.
  ASSERT_EQ(crc32(contents),
            crc32(std::span<const std::byte>(reference.data(),
                                             static_cast<std::size_t>(
                                                 written_max))));
}

}  // namespace
}  // namespace tcio::core
