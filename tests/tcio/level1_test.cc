#include "tcio/level1.h"

#include <gtest/gtest.h>

namespace tcio::core {
namespace {

TEST(Level1BufferTest, StartsEmptyUnaligned) {
  Level1Buffer b(1024);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.alignedSegment(), -1);
}

TEST(Level1BufferTest, PutRecordsExtentAndData) {
  Level1Buffer b(1024);
  b.align(5);
  const int v = 42;
  b.put(100, &v, 4);
  EXPECT_FALSE(b.empty());
  const auto ext = b.mergedExtents();
  ASSERT_EQ(ext.size(), 1u);
  EXPECT_EQ(ext[0], (Extent{100, 104}));
  int got = 0;
  std::memcpy(&got, b.data() + 100, 4);
  EXPECT_EQ(got, 42);
}

TEST(Level1BufferTest, AdjacentPutsMerge) {
  Level1Buffer b(1024);
  b.align(0);
  const char x[8] = {};
  b.put(0, x, 4);
  b.put(4, x, 8);
  b.put(20, x, 4);
  const auto ext = b.mergedExtents();
  ASSERT_EQ(ext.size(), 2u);
  EXPECT_EQ(ext[0], (Extent{0, 12}));
  EXPECT_EQ(ext[1], (Extent{20, 24}));
}

TEST(Level1BufferTest, OverlappingRewriteIsLegal) {
  Level1Buffer b(1024);
  b.align(0);
  const int a = 1, c = 2;
  b.put(0, &a, 4);
  b.put(2, &c, 4);  // overlaps previous
  const auto ext = b.mergedExtents();
  ASSERT_EQ(ext.size(), 1u);
  EXPECT_EQ(ext[0], (Extent{0, 6}));
}

TEST(Level1BufferTest, OutOfBoundsPutRejected) {
  Level1Buffer b(64);
  b.align(0);
  const char x[16] = {};
  EXPECT_THROW(b.put(60, x, 8), Error);
  EXPECT_THROW(b.put(-1, x, 4), Error);
}

TEST(Level1BufferTest, RealignRequiresEmpty) {
  Level1Buffer b(64);
  b.align(1);
  const char x = 0;
  b.put(0, &x, 1);
  EXPECT_THROW(b.align(2), Error);
  b.reset();
  EXPECT_NO_THROW(b.align(2));
}

}  // namespace
}  // namespace tcio::core
