// Tests for the paper's Program 1 C API surface.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mpi/runtime.h"
#include "tcio/capi.h"
#include "tcio/file.h"

namespace {

using namespace tcio;

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 2;
  c.stripe_size = 1024;
  return c;
}

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

core::TcioConfig smallTcio() {
  core::TcioConfig c;
  c.segment_size = 256;
  c.segments_per_rank = 16;
  return c;
}

TEST(CApiTest, OpenWithoutContextFails) {
  fs::Filesystem fsys(fsCfg());
  // Run on a fresh thread (rank threads are fresh) without set_context.
  EXPECT_THROW(mpi::runJob(job(1),
                           [&](mpi::Comm&) {
                             tcio_open("nocontext.dat",
                                       TCIO_WRONLY | TCIO_CREATE);
                           }),
               Error);
}

TEST(CApiTest, SequentialWriteReadWithSeek) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    tcio_set_context(comm, fsys, smallTcio());
    {
      tcio_file* fh = tcio_open("seq.dat", TCIO_WRONLY | TCIO_CREATE);
      tcio_seek(fh, comm.rank() * 16, TCIO_SEEK_SET);
      const std::int32_t a[2] = {comm.rank() * 10, comm.rank() * 10 + 1};
      tcio_write(fh, a, 2, mpi::Datatype::int32());
      const double d = comm.rank() + 0.25;
      tcio_write(fh, &d, 1, mpi::Datatype::float64());
      tcio_close(fh);
    }
    {
      tcio_file* fh = tcio_open("seq.dat", TCIO_RDONLY);
      const int peer = (comm.rank() + 1) % 2;
      tcio_seek(fh, peer * 16, TCIO_SEEK_SET);
      std::int32_t a[2] = {};
      double d = 0;
      tcio_read(fh, a, 2, mpi::Datatype::int32());
      tcio_read(fh, &d, 1, mpi::Datatype::float64());
      tcio_fetch(fh);
      EXPECT_EQ(a[0], peer * 10);
      EXPECT_EQ(a[1], peer * 10 + 1);
      EXPECT_DOUBLE_EQ(d, peer + 0.25);
      tcio_close(fh);
    }
  });
}

TEST(CApiTest, WriteAtAndFlush) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(4), [&](mpi::Comm& comm) {
    tcio_set_context(comm, fsys, smallTcio());
    tcio_file* fh = tcio_open("wa.dat", TCIO_RDWR | TCIO_CREATE);
    const std::int64_t v = comm.rank() * 100;
    tcio_write_at(fh, comm.rank() * 8, &v, 1, mpi::Datatype::int64());
    tcio_flush(fh);
    // After flush, every rank can read everyone's data.
    for (int r = 0; r < 4; ++r) {
      std::int64_t got = -1;
      tcio_read_at(fh, r * 8, &got, 1, mpi::Datatype::int64());
      tcio_fetch(fh);
      EXPECT_EQ(got, r * 100);
    }
    tcio_close(fh);
  });
}

TEST(CApiTest, SeekWhenceVariants) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    tcio_set_context(comm, fsys, smallTcio());
    tcio_file* fh = tcio_open("sw.dat", TCIO_WRONLY | TCIO_CREATE);
    tcio_seek(fh, 100, TCIO_SEEK_SET);
    EXPECT_EQ(fh->tell(), 100);
    tcio_seek(fh, -40, TCIO_SEEK_CUR);
    EXPECT_EQ(fh->tell(), 60);
    const std::int32_t v = 1;
    tcio_write(fh, &v, 1, mpi::Datatype::int32());
    tcio_seek(fh, 0, TCIO_SEEK_END);
    EXPECT_EQ(fh->tell(), 64);
    tcio_close(fh);
  });
}

TEST(CApiTest, ModeConstantsMatchFsFlags) {
  EXPECT_EQ(TCIO_RDONLY, static_cast<int>(fs::kRead));
  EXPECT_EQ(TCIO_WRONLY, static_cast<int>(fs::kWrite));
  EXPECT_EQ(TCIO_RDWR, static_cast<int>(fs::kRead | fs::kWrite));
  EXPECT_EQ(TCIO_CREATE, static_cast<int>(fs::kCreate));
  EXPECT_EQ(TCIO_TRUNC, static_cast<int>(fs::kTruncate));
}

TEST(CApiTest, StatsReportHealthyRunAsZero) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    tcio_set_context(comm, fsys, smallTcio());
    tcio_file* fh = tcio_open("healthy.dat", TCIO_WRONLY | TCIO_CREATE);
    const std::int32_t v = comm.rank();
    tcio_write_at(fh, comm.rank() * 4, &v, 1, mpi::Datatype::int32());
    tcio_flush(fh);
    tcio_stats_t st;
    tcio_stats(fh, &st);
    EXPECT_EQ(st.degraded, 0);
    EXPECT_EQ(st.fs_transient_faults, 0);
    EXPECT_EQ(st.ranks_crashed, 0);
    EXPECT_EQ(st.journal_records_replayed, 0);
    tcio_close(fh);
  });
}

TEST(CApiTest, StatsSurfaceRetryAndDegradedCounters) {
  fs::Filesystem fsys(fsCfg());
  core::TcioConfig cfg = smallTcio();
  cfg.faults.enabled = true;
  cfg.faults.seed = 5;
  cfg.faults.fs_transient_write_rate = 0.5;
  cfg.retry.max_attempts = 8;
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    tcio_set_context(comm, fsys, cfg);
    tcio_file* fh = tcio_open("degraded.dat", TCIO_WRONLY | TCIO_CREATE);
    std::vector<std::byte> buf(1024, std::byte{0x11});
    fh->writeAt(comm.rank() * 1024, buf.data(), 1024);
    // Close drains level-2 to the OSTs — that is where the seeded transient
    // faults hit and the retry loop absorbs them. Those counters are only
    // observable through the closing stats variant: plain tcio_close frees
    // the handle before they could be read.
    tcio_stats_t st;
    tcio_close_stats(fh, &st);
    EXPECT_GT(st.fs_transient_faults, 0);
    EXPECT_EQ(st.fs_retries, st.fs_transient_faults);  // none exhausted
    EXPECT_EQ(st.fs_retry_giveups, 0);
    EXPECT_EQ(st.degraded, 1);
  });
}

TEST(CApiTest, TwoFilesConcurrently) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    tcio_set_context(comm, fsys, smallTcio());
    tcio_file* a = tcio_open("a.dat", TCIO_WRONLY | TCIO_CREATE);
    tcio_file* b = tcio_open("b.dat", TCIO_WRONLY | TCIO_CREATE);
    const std::int32_t va = 1 + comm.rank(), vb = 100 + comm.rank();
    tcio_write_at(a, comm.rank() * 4, &va, 1, mpi::Datatype::int32());
    tcio_write_at(b, comm.rank() * 4, &vb, 1, mpi::Datatype::int32());
    tcio_close(a);
    tcio_close(b);
  });
  std::int32_t v = 0;
  fsys.peek("a.dat", 4, {reinterpret_cast<std::byte*>(&v), 4});
  EXPECT_EQ(v, 2);
  fsys.peek("b.dat", 0, {reinterpret_cast<std::byte*>(&v), 4});
  EXPECT_EQ(v, 100);
}

}  // namespace
