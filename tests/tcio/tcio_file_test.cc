#include "tcio/file.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mpi/runtime.h"
#include "tcio/capi.h"

namespace tcio::core {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 4;
  c.stripe_size = 1024;
  return c;
}

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

TcioConfig smallTcio(Bytes seg = 256, std::int64_t nseg = 16) {
  TcioConfig c;
  c.segment_size = seg;
  c.segments_per_rank = nseg;
  return c;
}

TEST(TcioFileTest, SingleRankWriteCloseReadBack) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    File f(comm, fsys, "one.dat", fs::kWrite | fs::kCreate, smallTcio());
    const std::vector<int> data{1, 2, 3, 4, 5};
    f.writeAt(0, data.data(), 20);
    f.close();
  });
  std::vector<int> out(5);
  fsys.peek("one.dat", 0, {reinterpret_cast<std::byte*>(out.data()), 20});
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(fsys.peekSize("one.dat"), 20);
}

TEST(TcioFileTest, PaperFig4Workflow) {
  // Two processes, two in-memory arrays (int, double), LEN=3, interleaved
  // round-robin into a shared file — the paper's running example.
  fs::Filesystem fsys(fsCfg());
  const int P = 2, LEN = 3;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    File f(comm, fsys, "fig4.dat", fs::kWrite | fs::kCreate,
           smallTcio(/*seg=*/36, /*nseg=*/4));
    const int r = comm.rank();
    std::vector<std::int32_t> ints{r * 10 + 1, r * 10 + 2, r * 10 + 3};
    std::vector<double> dbls{r + 0.1, r + 0.2, r + 0.3};
    const Bytes block = 12;  // int + double
    for (int i = 0; i < LEN; ++i) {
      Offset pos = r * block + static_cast<Offset>(i) * block * P;
      f.writeAt(pos, &ints[static_cast<std::size_t>(i)], 4);
      f.writeAt(pos + 4, &dbls[static_cast<std::size_t>(i)], 8);
    }
    f.close();
  });
  // File: slot k = rank k%2, element k/2.
  for (int slot = 0; slot < P * LEN; ++slot) {
    const int r = slot % P, i = slot / P;
    std::int32_t iv;
    double dv;
    std::vector<std::byte> raw(12);
    fsys.peek("fig4.dat", slot * 12, raw);
    std::memcpy(&iv, raw.data(), 4);
    std::memcpy(&dv, raw.data() + 4, 8);
    EXPECT_EQ(iv, r * 10 + i + 1);
    EXPECT_DOUBLE_EQ(dv, r + 0.1 * (i + 1));
  }
}

TEST(TcioFileTest, WriteSpanningSegmentsSplitsCorrectly) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    File f(comm, fsys, "span.dat", fs::kWrite | fs::kCreate,
           smallTcio(/*seg=*/128, /*nseg=*/8));
    if (comm.rank() == 0) {
      std::vector<std::byte> big(500);
      for (std::size_t i = 0; i < big.size(); ++i) {
        big[i] = static_cast<std::byte>(i % 251);
      }
      f.writeAt(100, big.data(), 500);  // spans segments 0..4
    }
    f.close();
  });
  std::vector<std::byte> out(500);
  fsys.peek("span.dat", 100, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<std::byte>(i % 251)) << i;
  }
}

TEST(TcioFileTest, WriteThenReadBackSameSessionViaFetch) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(4), [&](mpi::Comm& comm) {
    File f(comm, fsys, "rw.dat", fs::kRead | fs::kWrite | fs::kCreate,
           smallTcio());
    const std::int64_t v = comm.rank() * 111;
    f.writeAt(comm.rank() * 8, &v, 8);
    f.flush();
    // Every rank reads its right neighbour's value.
    const int peer = (comm.rank() + 1) % comm.size();
    std::int64_t got = -1;
    f.readAt(peer * 8, &got, 8);
    f.fetch();
    EXPECT_EQ(got, peer * 111);
    f.close();
  });
}

TEST(TcioFileTest, RestartDumpThenLoad) {
  // The ART pattern: dump a snapshot, close, reopen, restore.
  fs::Filesystem fsys(fsCfg());
  const int P = 4;
  const Bytes per_rank = 1000;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    File f(comm, fsys, "snap.dat", fs::kWrite | fs::kCreate, smallTcio());
    std::vector<std::byte> mine(static_cast<std::size_t>(per_rank));
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = static_cast<std::byte>((comm.rank() * 131 + i) % 251);
    }
    f.writeAt(comm.rank() * per_rank, mine.data(), per_rank);
    f.close();
  });
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    File f(comm, fsys, "snap.dat", fs::kRead, smallTcio());
    std::vector<std::byte> got(static_cast<std::size_t>(per_rank));
    f.readAt(comm.rank() * per_rank, got.data(), per_rank);
    f.fetch();
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], static_cast<std::byte>((comm.rank() * 131 + i) % 251));
    }
    f.close();
  });
}

TEST(TcioFileTest, LazyReadDoesNotMaterializeUntilFetch) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    {
      File w(comm, fsys, "lazy.dat", fs::kWrite | fs::kCreate, smallTcio());
      const std::int64_t v = 7777;
      if (comm.rank() == 0) w.writeAt(0, &v, 8);
      w.close();
    }
    File f(comm, fsys, "lazy.dat", fs::kRead, smallTcio());
    std::int64_t got = -1;
    f.readAt(0, &got, 8);
    EXPECT_EQ(got, -1);  // lazy: nothing landed yet
    f.fetch();
    EXPECT_EQ(got, 7777);
    f.close();
  });
}

TEST(TcioFileTest, EagerReadAblationMaterializesImmediately) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    {
      File w(comm, fsys, "eager.dat", fs::kWrite | fs::kCreate, smallTcio());
      const std::int64_t v = 1234;
      if (comm.rank() == 0) w.writeAt(0, &v, 8);
      w.close();
    }
    TcioConfig cfg = smallTcio();
    cfg.lazy_reads = false;
    File f(comm, fsys, "eager.dat", fs::kRead, cfg);
    std::int64_t got = -1;
    f.readAt(0, &got, 8);
    EXPECT_EQ(got, 1234);  // already there
    f.close();
  });
}

TEST(TcioFileTest, AutoIndependentFetchOnSegmentChange) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    {
      File w(comm, fsys, "auto.dat", fs::kWrite | fs::kCreate,
             smallTcio(/*seg=*/64, /*nseg=*/8));
      if (comm.rank() == 0) {
        std::vector<std::int64_t> vals{10, 20, 30, 40};
        for (int i = 0; i < 4; ++i) {
          w.writeAt(i * 64, &vals[static_cast<std::size_t>(i)], 8);
        }
      }
      w.close();
    }
    TcioConfig rc = smallTcio(/*seg=*/64, /*nseg=*/8);
    rc.auto_fetch_on_segment_exit = true;  // the paper's literal trigger
    File f(comm, fsys, "auto.dat", fs::kRead, rc);
    std::int64_t a = -1, b = -1;
    f.readAt(0, &a, 8);    // pending in segment 0
    f.readAt(64, &b, 8);   // crosses to segment 1 -> segment-0 group resolves
    EXPECT_EQ(a, 10);
    EXPECT_EQ(b, -1);      // still pending
    EXPECT_EQ(f.stats().independent_fetches, 1);
    f.fetch();
    EXPECT_EQ(b, 20);
    f.close();
  });
}

TEST(TcioFileTest, InterleavedManyRanksMatchesReferenceModel) {
  // Property test: the paper's benchmark pattern at several scales must
  // produce exactly the bytes a sequential reference model produces.
  for (const int P : {2, 4, 8}) {
    fs::Filesystem fsys(fsCfg());
    const int LEN = 32;
    const Bytes block = 12;
    std::vector<std::byte> reference(
        static_cast<std::size_t>(P * LEN * block));
    // Reference: rank r element i -> slot i*P + r.
    for (int r = 0; r < P; ++r) {
      for (int i = 0; i < LEN; ++i) {
        const std::int32_t iv = r * 1000 + i;
        const double dv = r * 3.0 + i;
        const std::size_t pos =
            static_cast<std::size_t>((i * P + r) * block);
        std::memcpy(reference.data() + pos, &iv, 4);
        std::memcpy(reference.data() + pos + 4, &dv, 8);
      }
    }
    mpi::runJob(job(P), [&](mpi::Comm& comm) {
      File f(comm, fsys, "ref.dat", fs::kWrite | fs::kCreate,
             smallTcio(/*seg=*/96, /*nseg=*/64));
      const int r = comm.rank();
      for (int i = 0; i < LEN; ++i) {
        const std::int32_t iv = r * 1000 + i;
        const double dv = r * 3.0 + i;
        const Offset pos = (static_cast<Offset>(i) * P + r) * block;
        f.writeAt(pos, &iv, 4);
        f.writeAt(pos + 4, &dv, 8);
      }
      f.close();
    });
    std::vector<std::byte> got(reference.size());
    fsys.peek("ref.dat", 0, got);
    EXPECT_EQ(got, reference) << "P=" << P;
  }
}

TEST(TcioFileTest, VariableSizedBlocksLikeArt) {
  // Dynamic block sizes — the case where OCIO file views cannot be used.
  fs::Filesystem fsys(fsCfg());
  const int P = 4;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    File f(comm, fsys, "var.dat", fs::kWrite | fs::kCreate,
           smallTcio(/*seg=*/128, /*nseg=*/64));
    // Rank r writes blocks of size 10+r*7 at offsets interleaved with a
    // running global cursor every rank can compute.
    Offset cursor = 0;
    for (int round = 0; round < 6; ++round) {
      for (int r = 0; r < P; ++r) {
        const Bytes len = 10 + r * 7 + round;
        if (r == comm.rank()) {
          std::vector<std::byte> data(static_cast<std::size_t>(len),
                                      static_cast<std::byte>(r * 40 + round));
          f.writeAt(cursor, data.data(), len);
        }
        cursor += len;
      }
    }
    f.close();
  });
  // Verify with the same cursor walk.
  Offset cursor = 0;
  for (int round = 0; round < 6; ++round) {
    for (int r = 0; r < P; ++r) {
      const Bytes len = 10 + r * 7 + round;
      std::vector<std::byte> got(static_cast<std::size_t>(len));
      fsys.peek("var.dat", cursor, got);
      for (auto b : got) {
        ASSERT_EQ(b, static_cast<std::byte>(r * 40 + round))
            << "round " << round << " rank " << r;
      }
      cursor += len;
    }
  }
}

TEST(TcioFileTest, TwoSidedAblationProducesIdenticalFile) {
  auto runMode = [&](bool onesided) {
    fs::Filesystem fsys(fsCfg());
    const int P = 4, LEN = 16;
    mpi::runJob(job(P), [&](mpi::Comm& comm) {
      TcioConfig cfg = smallTcio(/*seg=*/96, /*nseg=*/32);
      cfg.use_onesided = onesided;
      File f(comm, fsys, "mode.dat", fs::kWrite | fs::kCreate, cfg);
      for (int i = 0; i < LEN; ++i) {
        const std::int64_t v = comm.rank() * 100 + i;
        f.writeAt((static_cast<Offset>(i) * P + comm.rank()) * 8, &v, 8);
      }
      f.close();
    });
    std::vector<std::byte> contents(static_cast<std::size_t>(P * LEN * 8));
    fsys.peek("mode.dat", 0, contents);
    return contents;
  };
  EXPECT_EQ(runMode(true), runMode(false));
}

TEST(TcioFileTest, TwoSidedReadFetch) {
  fs::Filesystem fsys(fsCfg());
  const int P = 4;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    TcioConfig cfg = smallTcio();
    cfg.use_onesided = false;
    {
      File w(comm, fsys, "ts.dat", fs::kWrite | fs::kCreate, cfg);
      const std::int64_t v = comm.rank() + 50;
      w.writeAt(comm.rank() * 8, &v, 8);
      w.close();
    }
    File f(comm, fsys, "ts.dat", fs::kRead, cfg);
    const int peer = (comm.rank() + 2) % P;
    std::int64_t got = -1;
    f.readAt(peer * 8, &got, 8);
    f.fetch();
    EXPECT_EQ(got, peer + 50);
    f.close();
  });
}

TEST(TcioFileTest, CapacityOverflowRejected) {
  fs::Filesystem fsys(fsCfg());
  EXPECT_THROW(
      mpi::runJob(job(2),
                  [&](mpi::Comm& comm) {
                    File f(comm, fsys, "cap.dat", fs::kWrite | fs::kCreate,
                           smallTcio(/*seg=*/64, /*nseg=*/2));
                    // capacity = 64*2*2 = 256
                    const std::int64_t v = 0;
                    f.writeAt(300, &v, 8);
                    f.close();
                  }),
      Error);
}

TEST(TcioFileTest, MemoryFootprintIsLevel1PlusWindow) {
  fs::Filesystem fsys(fsCfg());
  const Bytes seg = 512;
  const std::int64_t nseg = 8;
  Bytes peak = 0;
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    File f(comm, fsys, "mem.dat", fs::kWrite | fs::kCreate,
           smallTcio(seg, nseg));
    const std::int64_t v = 1;
    f.writeAt(comm.rank() * 8, &v, 8);
    f.close();
    if (comm.rank() == 0) peak = comm.memory().peak();
  });
  // level-1 (seg) + window (nseg * (seg + 2 flag bytes)).
  EXPECT_EQ(peak, seg + nseg * (seg + 2));
}

TEST(TcioFileTest, StatsCountOperations) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    File f(comm, fsys, "stat.dat", fs::kRead | fs::kWrite | fs::kCreate,
           smallTcio(/*seg=*/64, /*nseg=*/8));
    const std::int64_t v = 5;
    f.writeAt(0, &v, 8);
    f.writeAt(64, &v, 8);  // new segment -> flush of segment 0
    EXPECT_EQ(f.stats().writes, 2);
    EXPECT_EQ(f.stats().level1_flushes, 1);
    f.flush();
    EXPECT_EQ(f.stats().level1_flushes, 2);
    std::int64_t got;
    f.readAt(0, &got, 8);
    f.fetch();
    EXPECT_EQ(f.stats().reads, 1);
    EXPECT_GE(f.stats().collective_fetches, 1);
    f.close();
  });
}

TEST(TcioFileTest, SequentialWriteApiMovesPointer) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    File f(comm, fsys, "seq.dat", fs::kWrite | fs::kCreate, smallTcio());
    const auto dt = mpi::Datatype::int32();
    const std::int32_t a[2] = {1, 2};
    const std::int32_t b[1] = {3};
    f.write(a, 2, dt);
    EXPECT_EQ(f.tell(), 8);
    f.write(b, 1, dt);
    EXPECT_EQ(f.tell(), 12);
    f.seek(4, Whence::kSet);
    const std::int32_t c = 9;
    f.write(&c, 1, dt);
    f.close();
  });
  std::int32_t out[3];
  fsys.peek("seq.dat", 0, {reinterpret_cast<std::byte*>(out), 12});
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 9);
  EXPECT_EQ(out[2], 3);
}

TEST(TcioFileTest, CApiProgramThreeStyle) {
  // Program 3, literally: POSIX-like calls, no buffers, no file views.
  fs::Filesystem fsys(fsCfg());
  const int P = 2;
  const std::int64_t LEN = 6;
  const Bytes SIZEaccess = 1;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    tcio_set_context(comm, fsys, smallTcio(/*seg=*/96, /*nseg=*/16));
    std::vector<std::int32_t> arr_i(static_cast<std::size_t>(LEN));
    std::vector<double> arr_d(static_cast<std::size_t>(LEN));
    for (std::int64_t i = 0; i < LEN; ++i) {
      arr_i[static_cast<std::size_t>(i)] = comm.rank() * 100 + static_cast<int>(i);
      arr_d[static_cast<std::size_t>(i)] = comm.rank() + i * 0.5;
    }
    const Bytes block_size = (4 + 8) * SIZEaccess;
    tcio_file* handle =
        tcio_open("prog3.dat", TCIO_WRONLY | TCIO_CREATE);
    for (std::int64_t i = 0; i < LEN; i += SIZEaccess) {
      Offset pos = comm.rank() * block_size + i * block_size * P;
      tcio_write_at(handle, pos, &arr_i[static_cast<std::size_t>(i)],
                    static_cast<int>(SIZEaccess), mpi::Datatype::int32());
      pos += 4 * SIZEaccess;
      tcio_write_at(handle, pos, &arr_d[static_cast<std::size_t>(i)],
                    static_cast<int>(SIZEaccess), mpi::Datatype::float64());
    }
    tcio_close(handle);
  });
  for (int slot = 0; slot < P * LEN; ++slot) {
    const int r = slot % P, i = slot / P;
    std::int32_t iv;
    double dv;
    std::vector<std::byte> raw(12);
    fsys.peek("prog3.dat", slot * 12, raw);
    std::memcpy(&iv, raw.data(), 4);
    std::memcpy(&dv, raw.data() + 4, 8);
    EXPECT_EQ(iv, r * 100 + i);
    EXPECT_DOUBLE_EQ(dv, r + i * 0.5);
  }
}

TEST(TcioFileTest, RandomizedPatternMatchesReference) {
  // Fuzz: random disjoint writes from all ranks, verified byte-for-byte.
  fs::Filesystem fsys(fsCfg());
  const int P = 4;
  const Bytes total = 8192;
  std::vector<std::byte> reference(static_cast<std::size_t>(total),
                                   std::byte{0});
  // Precompute a deterministic disjoint random partition: shuffle chunks of
  // random lengths among ranks.
  Rng rng(99);
  struct Piece {
    Offset off;
    Bytes len;
    int rank;
  };
  std::vector<Piece> pieces;
  Offset cur = 0;
  while (cur < total) {
    const Bytes len = std::min<Bytes>(1 + rng.uniformInt(0, 99), total - cur);
    const int owner = static_cast<int>(rng.uniformInt(0, P - 1));
    pieces.push_back({cur, len, owner});
    cur += len;
  }
  for (const Piece& p : pieces) {
    for (Bytes i = 0; i < p.len; ++i) {
      reference[static_cast<std::size_t>(p.off + i)] =
          static_cast<std::byte>((p.rank * 53 + p.off + i) % 251);
    }
  }
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    File f(comm, fsys, "fuzz.dat", fs::kWrite | fs::kCreate,
           smallTcio(/*seg=*/256, /*nseg=*/16));
    for (const Piece& p : pieces) {
      if (p.rank != comm.rank()) continue;
      std::vector<std::byte> data(static_cast<std::size_t>(p.len));
      for (Bytes i = 0; i < p.len; ++i) {
        data[static_cast<std::size_t>(i)] =
            static_cast<std::byte>((p.rank * 53 + p.off + i) % 251);
      }
      f.writeAt(p.off, data.data(), p.len);
    }
    f.close();
  });
  std::vector<std::byte> got(static_cast<std::size_t>(total));
  fsys.peek("fuzz.dat", 0, got);
  EXPECT_EQ(got, reference);
}

TEST(TcioFileTest, FsFaultDuringClosePropagates) {
  fs::Filesystem fsys(fsCfg());
  fsys.injectWriteFault(0);  // first FS write request fails
  EXPECT_THROW(
      mpi::runJob(job(2),
                  [&](mpi::Comm& comm) {
                    File f(comm, fsys, "fault.dat", fs::kWrite | fs::kCreate,
                           smallTcio());
                    const std::int64_t v = 1;
                    f.writeAt(comm.rank() * 8, &v, 8);
                    f.close();
                  }),
      FsError);
}

}  // namespace
}  // namespace tcio::core
