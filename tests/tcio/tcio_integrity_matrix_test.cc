// Silent-corruption matrix: seeded bit-flips at every checksum-domain site
// (DESIGN.md §11) under every exchange mode, plus the delegate server.
//
// Every leg must show
//   (a) detection — no seeded flip ever reaches a user read buffer or the
//       store unverified: crc_mismatches > 0 on the corrupt run,
//   (b) repair — repairable cases end byte-identical to the clean reference
//       (WAL replay, client re-stage, or OST replica read-repair), and
//   (c) surfacing — unrepairable cases raise a typed IntegrityError through
//       the collective agreement instead of propagating bytes.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/env.h"
#include "common/error.h"
#include "delegate/client.h"
#include "delegate/session.h"
#include "fs/filesystem.h"
#include "mpi/agreement.h"
#include "mpi/runtime.h"
#include "tcio/file.h"

namespace tcio::core {
namespace {

constexpr int kProcs = 6;
constexpr Rank kVictim = 2;
constexpr Bytes kSegment = 512;
constexpr std::int64_t kSegsPerRank = 4;
constexpr Bytes kPerRank = kSegment * kSegsPerRank;
constexpr Bytes kTotal = kPerRank * kProcs;
constexpr Bytes kChunk = 256;

std::byte expected(Offset off) {
  return static_cast<std::byte>((off * 13 + off / kSegment) % 251 + 1);
}

std::vector<std::byte> referenceFile() {
  std::vector<std::byte> ref(static_cast<std::size_t>(kTotal));
  for (Offset off = 0; off < kTotal; ++off) {
    ref[static_cast<std::size_t>(off)] = expected(off);
  }
  return ref;
}

enum class Mode { kOneSided, kTwoSided, kNodeAgg };

struct IntegrityParam {
  CorruptSite site;
  Mode mode;
};

std::string paramName(const ::testing::TestParamInfo<IntegrityParam>& info) {
  const char* s = "";
  switch (info.param.site) {
    case CorruptSite::kStagingFrame: s = "staging_frame"; break;
    case CorruptSite::kWindow: s = "window"; break;
    case CorruptSite::kStoredBlock: s = "stored_block"; break;
    case CorruptSite::kJournalBody: s = "journal_body"; break;
  }
  const char* m = "";
  switch (info.param.mode) {
    case Mode::kOneSided: m = "_onesided"; break;
    case Mode::kTwoSided: m = "_twosided"; break;
    case Mode::kNodeAgg: m = "_nodeagg"; break;
  }
  return std::string(s) + m;
}

TcioConfig integrityCfg(Mode mode, std::uint64_t seed) {
  TcioConfig cfg;
  cfg.segment_size = kSegment;
  cfg.segments_per_rank = kSegsPerRank;
  cfg.use_onesided = mode != Mode::kTwoSided;
  cfg.lazy_reads = true;
  cfg.node_aggregation = mode == Mode::kNodeAgg;
  cfg.integrity.enabled = 1;  // pinned on regardless of TCIO_INTEGRITY
  cfg.faults.seed = seed;
  return cfg;
}

struct RunResult {
  std::array<std::int32_t, kProcs> outcome{};  // CapturedError codes
  std::vector<std::byte> contents;
  TcioIntegrityStats integrity{};  // summed over ranks
};

/// Writes the reference pattern (two rounds with a mid-job flush) and sums
/// the integrity counters over the ranks.
RunResult runWrite(const TcioConfig& cfg, std::uint64_t seed) {
  fs::FsConfig fcfg;
  fcfg.num_osts = 3;
  fcfg.stripe_size = kSegment;
  fs::Filesystem fsys(fcfg);

  mpi::JobConfig jc;
  jc.num_ranks = kProcs;
  jc.net.ranks_per_node = 3;
  jc.seed = seed;

  RunResult res;
  std::array<TcioIntegrityStats, kProcs> per_rank{};
  mpi::runJob(jc, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    mpi::CapturedError err;
    File f(comm, fsys, "integ.dat", fs::kWrite | fs::kCreate, cfg);
    try {
      const Offset begin = r * kPerRank;
      std::vector<std::byte> buf(static_cast<std::size_t>(kChunk));
      auto writeRange = [&](Offset lo, Offset hi) {
        for (Offset cur = lo; cur < hi; cur += kChunk) {
          for (Bytes i = 0; i < kChunk; ++i) {
            buf[static_cast<std::size_t>(i)] = expected(cur + i);
          }
          f.writeAt(cur, buf.data(), kChunk);
        }
      };
      writeRange(begin, begin + kPerRank / 2);
      f.flush();
      writeRange(begin + kPerRank / 2, begin + kPerRank);
      f.close();
    } catch (const std::exception& e) {
      err.capture(e);
    }
    res.outcome[static_cast<std::size_t>(r)] = err.code;
    per_rank[static_cast<std::size_t>(r)] = f.stats().integrity;
  });
  for (const TcioIntegrityStats& s : per_rank) {
    res.integrity.crc_checks += s.crc_checks;
    res.integrity.crc_mismatches += s.crc_mismatches;
    res.integrity.repaired += s.repaired;
    res.integrity.unrepairable += s.unrepairable;
    res.integrity.scrub_passes += s.scrub_passes;
    res.integrity.segments_scrubbed += s.segments_scrubbed;
  }
  res.contents.resize(static_cast<std::size_t>(fsys.peekSize("integ.dat")));
  fsys.peek("integ.dat", 0, res.contents);
  return res;
}

// -- In-memory sites (staging frame, window) across every exchange mode -------

class TcioIntegrityMatrixTest
    : public ::testing::TestWithParam<IntegrityParam> {};

INSTANTIATE_TEST_SUITE_P(
    Matrix, TcioIntegrityMatrixTest,
    ::testing::Values(
        IntegrityParam{CorruptSite::kStagingFrame, Mode::kOneSided},
        IntegrityParam{CorruptSite::kStagingFrame, Mode::kTwoSided},
        IntegrityParam{CorruptSite::kStagingFrame, Mode::kNodeAgg},
        IntegrityParam{CorruptSite::kWindow, Mode::kOneSided},
        IntegrityParam{CorruptSite::kWindow, Mode::kTwoSided},
        IntegrityParam{CorruptSite::kWindow, Mode::kNodeAgg}),
    paramName);

TEST_P(TcioIntegrityMatrixTest, DetectsRepairsAndMatchesCleanRun) {
  const IntegrityParam p = GetParam();
  // Seed is sweepable so scripts/ci_fault_soak.sh's corruption leg covers a
  // fresh flip target (offset, bit) every iteration.
  const auto seed =
      static_cast<std::uint64_t>(envInt64("TCIO_FAULT_SEED", 29));

  TcioConfig corrupt_cfg = integrityCfg(p.mode, seed);
  corrupt_cfg.faults.corruptions.push_back({kVictim, p.site, /*after=*/0});
  const RunResult corrupt = runWrite(corrupt_cfg, seed);

  const RunResult clean = runWrite(integrityCfg(p.mode, seed), seed);

  // The flip was detected and repaired before the drain; nobody errored.
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(corrupt.outcome[static_cast<std::size_t>(r)], 0) << "rank " << r;
    EXPECT_EQ(clean.outcome[static_cast<std::size_t>(r)], 0) << "rank " << r;
  }
  EXPECT_GE(corrupt.integrity.crc_mismatches, 1);
  EXPECT_GE(corrupt.integrity.repaired, 1);
  EXPECT_EQ(corrupt.integrity.unrepairable, 0);
  // The clean run verifies the same domains and finds nothing.
  EXPECT_GT(clean.integrity.crc_checks, 0);
  EXPECT_EQ(clean.integrity.crc_mismatches, 0);
  EXPECT_GT(clean.integrity.scrub_passes, 0);
  // Byte parity: the repaired file equals the reference (and the clean run).
  const std::vector<std::byte> ref = referenceFile();
  EXPECT_EQ(corrupt.contents, ref);
  EXPECT_EQ(clean.contents, ref);
}

TEST(TcioIntegrityDeterminismTest, SameSeedSameDetectionAndRepair) {
  const auto seed =
      static_cast<std::uint64_t>(envInt64("TCIO_FAULT_SEED", 31));
  TcioConfig cfg = integrityCfg(Mode::kOneSided, seed);
  cfg.faults.corruptions.push_back(
      {kVictim, CorruptSite::kStagingFrame, /*after=*/0});
  const RunResult a = runWrite(cfg, seed);
  const RunResult b = runWrite(cfg, seed);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(crc32(a.contents), crc32(b.contents));
  EXPECT_EQ(a.integrity.crc_checks, b.integrity.crc_checks);
  EXPECT_EQ(a.integrity.crc_mismatches, b.integrity.crc_mismatches);
  EXPECT_EQ(a.integrity.repaired, b.integrity.repaired);
  EXPECT_EQ(a.integrity.segments_scrubbed, b.integrity.segments_scrubbed);
}

// -- Stored-block site: OST replica read-repair and the no-replica case -------

/// Writes the reference file with a kStoredBlock flip armed, then reads it
/// back through a second collective job. Returns the read outcomes.
std::array<std::int32_t, kProcs> storedBlockRoundTrip(
    fs::Filesystem& fsys, bool expect_clean_bytes) {
  mpi::JobConfig jc;
  jc.num_ranks = kProcs;
  jc.net.ranks_per_node = 3;
  jc.seed = 7;

  TcioConfig wcfg = integrityCfg(Mode::kOneSided, /*seed=*/7);
  wcfg.faults.enabled = true;  // installs the plan into the shared FS
  wcfg.faults.corruptions.push_back(
      {/*rank=*/-1, CorruptSite::kStoredBlock, /*after=*/0});
  mpi::runJob(jc, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    File f(comm, fsys, "stored.dat", fs::kWrite | fs::kCreate, wcfg);
    std::vector<std::byte> buf(static_cast<std::size_t>(kChunk));
    for (Offset cur = r * kPerRank; cur < (r + 1) * kPerRank; cur += kChunk) {
      for (Bytes i = 0; i < kChunk; ++i) {
        buf[static_cast<std::size_t>(i)] = expected(cur + i);
      }
      f.writeAt(cur, buf.data(), kChunk);
    }
    f.close();
  });
  EXPECT_GE(fsys.stats().corruptions_injected, 1);

  std::array<std::int32_t, kProcs> outcome{};
  const TcioConfig rcfg = integrityCfg(Mode::kOneSided, /*seed=*/7);
  mpi::runJob(jc, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    mpi::CapturedError err;
    File f(comm, fsys, "stored.dat", fs::kRead, rcfg);
    try {
      std::vector<std::byte> got(static_cast<std::size_t>(kPerRank));
      f.readAt(r * kPerRank, got.data(), kPerRank);
      f.fetch();
      if (expect_clean_bytes) {
        for (Offset i = 0; i < kPerRank; ++i) {
          ASSERT_EQ(got[static_cast<std::size_t>(i)],
                    expected(r * kPerRank + i))
              << "byte " << r * kPerRank + i;
        }
      }
      f.close();
    } catch (const std::exception& e) {
      err.capture(e);
    }
    outcome[static_cast<std::size_t>(r)] = err.code;
  });
  return outcome;
}

TEST(TcioStoredBlockTest, ReplicaReadRepairHealsThePrimary) {
  fs::FsConfig fcfg;
  fcfg.num_osts = 3;
  fcfg.stripe_size = kSegment;
  fcfg.integrity = 1;  // stored-block checksum domain pinned on
  // One page per segment write: a later partial-page write would re-digest
  // (and re-replicate) the already-flipped page, laundering the corruption
  // before any verified read — exactly what RMW does on real checksummed
  // stores, but not what this leg is probing.
  fcfg.page_size = kSegment;
  fs::Filesystem fsys(fcfg);
  const auto outcome = storedBlockRoundTrip(fsys, /*expect_clean_bytes=*/true);
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(outcome[static_cast<std::size_t>(r)], 0) << "rank " << r;
  }
  EXPECT_GE(fsys.stats().integrity_page_mismatches, 1);
  EXPECT_GE(fsys.stats().integrity_pages_repaired, 1);
}

TEST(TcioStoredBlockTest, NoReplicaSurfacesTypedIntegrityError) {
  fs::FsConfig fcfg;
  fcfg.num_osts = 3;
  fcfg.stripe_size = kSegment;
  fcfg.integrity = 1;
  fcfg.integrity_replicas = false;  // corruption is detectable, not healable
  fcfg.page_size = kSegment;        // see ReplicaReadRepairHealsThePrimary
  fs::Filesystem fsys(fcfg);
  const auto outcome =
      storedBlockRoundTrip(fsys, /*expect_clean_bytes=*/false);
  // Collective agreement: every rank sees the same typed IntegrityError.
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(outcome[static_cast<std::size_t>(r)],
              mpi::CapturedError::kIntegrity)
        << "rank " << r;
  }
  EXPECT_GE(fsys.stats().integrity_page_mismatches, 1);
  EXPECT_EQ(fsys.stats().integrity_pages_repaired, 0);
}

// -- Journal-body site: corrupt committed WAL records under a real crash ------

TEST(TcioJournalBodyTest, CorruptReplayRecordsAreDroppedAndCounted) {
  fs::FsConfig fcfg;
  fcfg.num_osts = 3;
  fcfg.stripe_size = kSegment;
  fs::Filesystem fsys(fcfg);

  mpi::JobConfig jc;
  jc.num_ranks = kProcs;
  jc.net.ranks_per_node = 3;
  jc.seed = 13;

  TcioConfig cfg;
  cfg.segment_size = kSegment;
  cfg.segments_per_rank = kSegsPerRank;
  cfg.crash.enabled = true;
  cfg.faults.enabled = true;
  cfg.faults.seed = 13;
  // The victim dies entering close; its round-1 WAL records are the only
  // repair source for its flushed bytes. Corrupt every early journal append
  // (victim records included) — replay must drop them, count the loss, and
  // never apply a mangled payload.
  cfg.faults.crashes.push_back(
      {kVictim, CrashPoint::kAtCollective, /*after=*/1});
  for (std::int64_t i = 0; i < 16; ++i) {
    cfg.faults.corruptions.push_back(
        {/*rank=*/-1, CorruptSite::kJournalBody, i});
  }

  std::array<std::int32_t, kProcs> outcome{};
  std::int64_t lost = 0;
  std::int64_t replayed = 0;
  mpi::runJob(jc, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    mpi::CapturedError err;
    File f(comm, fsys, "walflip.dat", fs::kWrite | fs::kCreate, cfg);
    try {
      const Offset begin = r * kPerRank;
      std::vector<std::byte> buf(static_cast<std::size_t>(kChunk));
      auto writeRange = [&](Offset lo, Offset hi) {
        for (Offset cur = lo; cur < hi; cur += kChunk) {
          for (Bytes i = 0; i < kChunk; ++i) {
            buf[static_cast<std::size_t>(i)] = expected(cur + i);
          }
          f.writeAt(cur, buf.data(), kChunk);
        }
      };
      writeRange(begin, begin + kPerRank / 2);
      f.flush();
      writeRange(begin + kPerRank / 2, begin + kPerRank);
      f.close();
    } catch (const std::exception& e) {
      err.capture(e);
    }
    outcome[static_cast<std::size_t>(r)] = err.code;
    if (r != kVictim) {
      lost += f.stats().degraded.unjournaled_segments_lost;
      replayed += f.stats().degraded.journal_records_replayed;
    }
  });

  for (int r = 0; r < kProcs; ++r) {
    if (r == kVictim) {
      EXPECT_EQ(outcome[static_cast<std::size_t>(r)],
                mpi::CapturedError::kRankCrashed);
    } else {
      EXPECT_EQ(outcome[static_cast<std::size_t>(r)], 0) << "rank " << r;
    }
  }
  // The corrupt records were detected (frame CRC) and dropped — counted as
  // lost, never replayed as mangled bytes.
  EXPECT_GE(lost, 1);
  // Replay only runs for the victim's owned segments, so the blast radius
  // is bounded: the victim's own region plus the segments it owned (any
  // rank's bytes whose WAL records were flipped get dropped there, zeroed,
  // and counted above). Everything else survives byte-exact — a flipped
  // record is never applied.
  const auto inVictimBlast = [](Offset off) {
    if (off >= kVictim * kPerRank && off < (kVictim + 1) * kPerRank) {
      return true;
    }
    const SegmentId g = off / kSegment;
    return g % kProcs == kVictim;
  };
  std::vector<std::byte> got(
      static_cast<std::size_t>(fsys.peekSize("walflip.dat")));
  fsys.peek("walflip.dat", 0, got);
  for (Offset off = 0; off < static_cast<Offset>(got.size()); ++off) {
    if (inVictimBlast(off)) {
      // Dropped records leave holes, never mangled payloads: each byte is
      // either the reference value (journaled clean and replayed) or zero.
      const std::byte b = got[static_cast<std::size_t>(off)];
      ASSERT_TRUE(b == expected(off) || b == std::byte{0}) << "byte " << off;
      continue;
    }
    ASSERT_EQ(got[static_cast<std::size_t>(off)], expected(off))
        << "byte " << off;
  }
  (void)replayed;
}

}  // namespace
}  // namespace tcio::core

// -- Delegate server legs -----------------------------------------------------

namespace tcio::delegate {
namespace {

using core::kChunk;
using core::kSegment;

std::byte dexpected(int client, Offset off) {
  return static_cast<std::byte>(
      (static_cast<Offset>(client) * 37 + off * 11) % 251 + 1);
}

std::vector<std::byte> clientBlock(int client, Offset off, Bytes n) {
  std::vector<std::byte> v(static_cast<std::size_t>(n));
  for (Bytes i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = dexpected(client, off + i);
  }
  return v;
}

mpi::JobConfig delegateJob() {
  mpi::JobConfig c;
  c.num_ranks = 6;
  c.seed = 17;
  return c;
}

core::TcioConfig delegatedIntegrity(int d) {
  core::TcioConfig cfg;
  cfg.segment_size = kSegment;
  cfg.segments_per_rank = 8;
  cfg.delegate_ranks = d;
  cfg.integrity.enabled = 1;
  cfg.faults.seed = 17;
  return cfg;
}

void runSession(mpi::Comm& comm, fs::Filesystem& fsys,
                const core::TcioConfig& cfg,
                const std::function<void(Session&, Channel&)>& body,
                core::TcioDelegateStats* stats = nullptr) {
  Session session(comm, fsys, cfg);
  core::TcioDelegateStats merged;
  if (session.isDelegate()) {
    session.serve();
  } else {
    Channel ch(session);
    body(session, ch);
    merged = session.finish();
  }
  comm.barrier();
  comm.bcast(&merged, sizeof(merged), /*root=*/session.numDelegates());
  if (stats != nullptr) *stats = merged;
}

TEST(DelegateIntegrityTest, FrameFlipRepairedByClientRestage) {
  fs::FsConfig fcfg;
  fcfg.num_osts = 4;
  fcfg.stripe_size = 1024;
  fs::Filesystem fsys(fcfg);
  core::TcioDelegateStats stats;
  mpi::runJob(delegateJob(), [&](mpi::Comm& comm) {
    core::TcioConfig cfg = delegatedIntegrity(/*d=*/2);
    // Delegate 0's first serviced put arrives with one flipped frame bit.
    cfg.faults.corruptions.push_back(
        {/*rank=*/0, CorruptSite::kStagingFrame, /*after=*/0});
    runSession(comm, fsys, cfg, [&](Session& s, Channel& ch) {
      const int c = s.clientComm().rank();
      DFile f(ch, "dframe.dat", fs::kRead | fs::kWrite | fs::kCreate);
      const Offset base = static_cast<Offset>(c) * kSegment;
      const std::vector<std::byte> data = clientBlock(c, base, kSegment);
      f.writeAt(base, data);
      f.flush();
      std::vector<std::byte> back(static_cast<std::size_t>(kSegment));
      f.readAt(base, back);
      EXPECT_EQ(back, data);
      f.close();
    }, &stats);
  });
  EXPECT_GE(stats.crc_mismatches, 1);
  EXPECT_GE(stats.repaired, 1);
  EXPECT_EQ(stats.unrepairable, 0);
  for (int c = 0; c < 4; ++c) {
    const Offset base = static_cast<Offset>(c) * kSegment;
    std::vector<std::byte> got(static_cast<std::size_t>(kSegment));
    fsys.peek("dframe.dat", base, got);
    EXPECT_EQ(got, clientBlock(c, base, kSegment)) << "client " << c;
  }
}

TEST(DelegateIntegrityTest, ShardFlipRepairedFromWal) {
  fs::FsConfig fcfg;
  fcfg.num_osts = 4;
  fcfg.stripe_size = 1024;
  fs::Filesystem fsys(fcfg);
  core::TcioDelegateStats stats;
  mpi::runJob(delegateJob(), [&](mpi::Comm& comm) {
    core::TcioConfig cfg = delegatedIntegrity(/*d=*/2);
    // A bit flips in delegate 0's shard buffer after the first put was
    // applied and acknowledged; the next crossing (get or drain) must heal
    // it from the delegate's WAL.
    cfg.faults.corruptions.push_back(
        {/*rank=*/0, CorruptSite::kWindow, /*after=*/0});
    runSession(comm, fsys, cfg, [&](Session& s, Channel& ch) {
      const int c = s.clientComm().rank();
      DFile f(ch, "dshard.dat", fs::kRead | fs::kWrite | fs::kCreate);
      const Offset base = static_cast<Offset>(c) * kSegment;
      const std::vector<std::byte> data = clientBlock(c, base, kSegment);
      f.writeAt(base, data);
      f.flush();
      std::vector<std::byte> back(static_cast<std::size_t>(kSegment));
      f.readAt(base, back);
      EXPECT_EQ(back, data);
      f.close();
    }, &stats);
  });
  EXPECT_GE(stats.crc_mismatches, 1);
  EXPECT_GE(stats.repaired, 1);
  EXPECT_EQ(stats.unrepairable, 0);
  for (int c = 0; c < 4; ++c) {
    const Offset base = static_cast<Offset>(c) * kSegment;
    std::vector<std::byte> got(static_cast<std::size_t>(kSegment));
    fsys.peek("dshard.dat", base, got);
    EXPECT_EQ(got, clientBlock(c, base, kSegment)) << "client " << c;
  }
}

TEST(DelegateIntegrityTest, DoubleFrameFlipIsUnrepairableAndTyped) {
  fs::FsConfig fcfg;
  fcfg.num_osts = 4;
  fcfg.stripe_size = 1024;
  fs::Filesystem fsys(fcfg);
  core::TcioDelegateStats stats;
  int integrity_errors = 0;
  mpi::runJob(delegateJob(), [&](mpi::Comm& comm) {
    core::TcioConfig cfg = delegatedIntegrity(/*d=*/2);
    // Both the original put and the client's re-stage arrive corrupt: the
    // delegate gives up and the client gets a typed IntegrityError.
    cfg.faults.corruptions.push_back(
        {/*rank=*/0, CorruptSite::kStagingFrame, /*after=*/0});
    cfg.faults.corruptions.push_back(
        {/*rank=*/0, CorruptSite::kStagingFrame, /*after=*/1});
    runSession(comm, fsys, cfg, [&](Session& s, Channel& ch) {
      const int c = s.clientComm().rank();
      DFile f(ch, "dunrep.dat", fs::kRead | fs::kWrite | fs::kCreate);
      if (c == 0) {
        // Only client 0 writes, so the doomed put is deterministic.
        const std::vector<std::byte> data = clientBlock(0, 0, kChunk);
        try {
          f.writeAt(0, data);
        } catch (const IntegrityError&) {
          ++integrity_errors;
        }
      }
      f.close();
    }, &stats);
  });
  EXPECT_EQ(integrity_errors, 1);
  EXPECT_GE(stats.crc_mismatches, 2);
  EXPECT_GE(stats.unrepairable, 1);
  EXPECT_EQ(stats.repaired, 0);
}

TEST(DelegateIntegrityTest, FineGrainedPutsCoalesceIntoLedgerRuns) {
  // The shard ledger mirrors File::digestLevel1's run coalescing: adjacent
  // same-client pieces extend one contiguous run, equal-length pieces at a
  // constant stride join a strided run — instead of one ledger entry (and
  // one digest per verification pass) per element. A shard-at-rest flip
  // inside a coalesced run must still be caught by the run's streamed CRC
  // and healed by WAL replay of the whole run.
  fs::FsConfig fcfg;
  fcfg.num_osts = 4;
  fcfg.stripe_size = 1024;
  fs::Filesystem fsys(fcfg);
  core::TcioDelegateStats stats;
  constexpr int kPieces = 8;
  constexpr Bytes kPiece = kSegment / kPieces;
  mpi::runJob(delegateJob(), [&](mpi::Comm& comm) {
    core::TcioConfig cfg = delegatedIntegrity(/*d=*/2);
    // Flip one bit in delegate 0's shard buffer after the first applied put;
    // later pieces extend that run, so the flip sits inside a multi-piece
    // coalesced entry by the time anything verifies it.
    cfg.faults.corruptions.push_back(
        {/*rank=*/0, CorruptSite::kWindow, /*after=*/0});
    runSession(comm, fsys, cfg, [&](Session& s, Channel& ch) {
      const int c = s.clientComm().rank();
      DFile f(ch, "druns.dat", fs::kRead | fs::kWrite | fs::kCreate);
      // Phase 1: kPieces adjacent pieces, one put each — one contiguous run.
      const Offset base = static_cast<Offset>(c) * kSegment;
      for (int i = 0; i < kPieces; ++i) {
        const Offset off = base + static_cast<Offset>(i) * kPiece;
        f.writeAt(off, clientBlock(c, off, kPiece));
      }
      f.flush();
      std::vector<std::byte> back(static_cast<std::size_t>(kSegment));
      f.readAt(base, back);
      EXPECT_EQ(back, clientBlock(c, base, kSegment));
      // Phase 2: three equal pieces at a constant stride in a second
      // segment — one strided run (join, then continue).
      const Offset base2 = static_cast<Offset>(4 + c) * kSegment;
      for (int i = 0; i < 3; ++i) {
        const Offset off = base2 + static_cast<Offset>(i) * 2 * kPiece;
        f.writeAt(off, clientBlock(c, off, kPiece));
      }
      f.close();
    }, &stats);
  });
  EXPECT_GE(stats.crc_mismatches, 1);
  EXPECT_GE(stats.repaired, 1);
  EXPECT_EQ(stats.unrepairable, 0);
  // One ledger entry per segment (4 contiguous + 4 strided runs): each
  // verification pass digests one run per shard segment, never one per
  // piece. The count decomposes as 44 per-put frame-arrival digests (11
  // puts x 4 clients, unaffected by coalescing) + at most 12 run digests
  // (4 get verifies + 8 drain scrubs x 1 run each); without coalescing the
  // ledger side alone would cost 76.
  EXPECT_LE(stats.crc_checks, 56);
  for (int c = 0; c < 4; ++c) {
    const Offset base = static_cast<Offset>(c) * kSegment;
    std::vector<std::byte> got(static_cast<std::size_t>(kSegment));
    fsys.peek("druns.dat", base, got);
    EXPECT_EQ(got, clientBlock(c, base, kSegment)) << "client " << c;
    const Offset base2 = static_cast<Offset>(4 + c) * kSegment;
    for (int i = 0; i < 3; ++i) {
      const Offset off = base2 + static_cast<Offset>(i) * 2 * kPiece;
      std::vector<std::byte> piece(static_cast<std::size_t>(kPiece));
      fsys.peek("druns.dat", off, piece);
      EXPECT_EQ(piece, clientBlock(c, off, kPiece))
          << "client " << c << " strided piece " << i;
    }
  }
}

}  // namespace
}  // namespace tcio::delegate
