// Edge cases and documented-behaviour tests for the TCIO core.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mpi/runtime.h"
#include "tcio/file.h"

namespace tcio::core {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 2;
  c.stripe_size = 1024;
  return c;
}

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

TcioConfig smallTcio(Bytes seg = 256, std::int64_t nseg = 16) {
  TcioConfig c;
  c.segment_size = seg;
  c.segments_per_rank = nseg;
  return c;
}

TEST(TcioEdgeTest, SingleRankJob) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    File f(comm, fsys, "solo.dat", fs::kRead | fs::kWrite | fs::kCreate,
           smallTcio());
    const std::int64_t v = 777;
    f.writeAt(100, &v, 8);
    f.flush();
    std::int64_t got = 0;
    f.readAt(100, &got, 8);
    f.fetch();
    EXPECT_EQ(got, 777);
    f.close();
  });
}

TEST(TcioEdgeTest, ZeroByteOperationsAreNoops) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    File f(comm, fsys, "zero.dat", fs::kRead | fs::kWrite | fs::kCreate,
           smallTcio());
    f.writeAt(0, nullptr, 0);
    f.readAt(0, nullptr, 0);
    EXPECT_EQ(f.stats().bytes_written, 0);
    EXPECT_EQ(f.stats().bytes_read, 0);
    f.close();
  });
  EXPECT_EQ(fsys.peekSize("zero.dat"), 0);
}

TEST(TcioEdgeTest, SingleWriteSpanningManySegmentsAndOwners) {
  fs::Filesystem fsys(fsCfg());
  const int P = 4;
  const Bytes total = 4096;  // 16 segments of 256 across 4 owners
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    File f(comm, fsys, "big.dat", fs::kWrite | fs::kCreate, smallTcio());
    if (comm.rank() == 0) {
      std::vector<std::byte> buf(static_cast<std::size_t>(total));
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<std::byte>(i % 251);
      }
      f.writeAt(0, buf.data(), total);
      EXPECT_EQ(f.stats().level1_flushes, total / 256 - 1);  // last in L1
    }
    f.close();
  });
  std::vector<std::byte> got(static_cast<std::size_t>(total));
  fsys.peek("big.dat", 0, got);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], static_cast<std::byte>(i % 251));
  }
}

TEST(TcioEdgeTest, RewriteSameBytesLastWriterWinsWithinRank) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    File f(comm, fsys, "rw2.dat", fs::kWrite | fs::kCreate, smallTcio());
    if (comm.rank() == 0) {
      const std::int64_t a = 1, b = 2;
      f.writeAt(0, &a, 8);
      f.writeAt(0, &b, 8);  // same level-1 segment: overwrites in place
    }
    f.close();
  });
  std::int64_t v = 0;
  fsys.peek("rw2.dat", 0, {reinterpret_cast<std::byte*>(&v), 8});
  EXPECT_EQ(v, 2);
}

TEST(TcioEdgeTest, RewriteAcrossFlushBoundary) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    File f(comm, fsys, "rw3.dat", fs::kWrite | fs::kCreate,
           smallTcio(/*seg=*/64, /*nseg=*/8));
    if (comm.rank() == 0) {
      const std::int64_t a = 1;
      f.writeAt(0, &a, 8);
      f.writeAt(64, &a, 8);  // flushes segment 0
      const std::int64_t b = 9;
      f.writeAt(0, &b, 8);  // returns to segment 0: new level-1 epoch
    }
    f.close();
  });
  std::int64_t v = 0;
  fsys.peek("rw3.dat", 0, {reinterpret_cast<std::byte*>(&v), 8});
  EXPECT_EQ(v, 9);
}

TEST(TcioEdgeTest, SeekEndAfterWrites) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    File f(comm, fsys, "se.dat", fs::kWrite | fs::kCreate, smallTcio());
    const std::int64_t v = 5;
    f.writeAt(92, &v, 8);  // local max = 100
    f.seek(0, Whence::kEnd);
    EXPECT_EQ(f.tell(), 100);
    f.seek(-8, Whence::kCur);
    EXPECT_EQ(f.tell(), 92);
    f.close();
  });
}

TEST(TcioEdgeTest, ReadOnlyHandleRejectsWrites) {
  fs::Filesystem fsys(fsCfg());
  EXPECT_THROW(
      mpi::runJob(job(1),
                  [&](mpi::Comm& comm) {
                    {
                      File w(comm, fsys, "ro.dat", fs::kWrite | fs::kCreate,
                             smallTcio());
                      const int v = 1;
                      w.writeAt(0, &v, 4);
                      w.close();
                    }
                    File f(comm, fsys, "ro.dat", fs::kRead, smallTcio());
                    const int v = 2;
                    f.writeAt(0, &v, 4);
                  }),
      Error);
}

TEST(TcioEdgeTest, WriteOnlyHandleRejectsReads) {
  fs::Filesystem fsys(fsCfg());
  EXPECT_THROW(
      mpi::runJob(job(1),
                  [&](mpi::Comm& comm) {
                    File f(comm, fsys, "wo.dat", fs::kWrite | fs::kCreate,
                           smallTcio());
                    int v;
                    f.readAt(0, &v, 4);
                  }),
      Error);
}

TEST(TcioEdgeTest, OperationsAfterCloseRejected) {
  fs::Filesystem fsys(fsCfg());
  EXPECT_THROW(
      mpi::runJob(job(1),
                  [&](mpi::Comm& comm) {
                    File f(comm, fsys, "ac.dat", fs::kWrite | fs::kCreate,
                           smallTcio());
                    f.close();
                    const int v = 1;
                    f.writeAt(0, &v, 4);
                  }),
      Error);
}

TEST(TcioEdgeTest, DoubleCloseIsIdempotent) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    File f(comm, fsys, "dc.dat", fs::kWrite | fs::kCreate, smallTcio());
    const int v = 3;
    f.writeAt(comm.rank() * 4, &v, 4);
    f.close();
    EXPECT_NO_THROW(f.close());
  });
}

TEST(TcioEdgeTest, DestructorClosesOpenFile) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    {
      File f(comm, fsys, "dtor.dat", fs::kWrite | fs::kCreate, smallTcio());
      const std::int64_t v = comm.rank() + 40;
      f.writeAt(comm.rank() * 8, &v, 8);
      // No explicit close: the destructor is collective here because all
      // ranks destroy at the same program point.
    }
    comm.barrier();
  });
  std::int64_t v = 0;
  fsys.peek("dtor.dat", 8, {reinterpret_cast<std::byte*>(&v), 8});
  EXPECT_EQ(v, 41);
}

TEST(TcioEdgeTest, SegmentSizeLargerThanAllData) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(4), [&](mpi::Comm& comm) {
    // Everything fits in segment 0 (owned by rank 0).
    File f(comm, fsys, "one_seg.dat", fs::kWrite | fs::kCreate,
           smallTcio(/*seg=*/1 << 16, /*nseg=*/1));
    const std::int64_t v = comm.rank() * 3;
    f.writeAt(comm.rank() * 8, &v, 8);
    f.close();
  });
  for (int r = 0; r < 4; ++r) {
    std::int64_t v = 0;
    fsys.peek("one_seg.dat", r * 8, {reinterpret_cast<std::byte*>(&v), 8});
    EXPECT_EQ(v, r * 3);
  }
}

TEST(TcioEdgeTest, StatsBytesMatchData) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    File f(comm, fsys, "sb.dat", fs::kRead | fs::kWrite | fs::kCreate,
           smallTcio());
    std::vector<std::byte> buf(300, std::byte{1});
    f.writeAt(comm.rank() * 300, buf.data(), 300);
    f.flush();
    f.readAt(comm.rank() * 300, buf.data(), 300);
    f.fetch();
    EXPECT_EQ(f.stats().bytes_written, 300);
    EXPECT_EQ(f.stats().bytes_read, 300);
    EXPECT_EQ(f.stats().writes, 1);
    EXPECT_EQ(f.stats().reads, 1);
    f.close();
  });
}

}  // namespace
}  // namespace tcio::core
