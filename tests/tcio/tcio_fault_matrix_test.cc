// Cross-layer fault matrix: {transient FS, permanent OST, RMA drop,
// straggler OST} x {node aggregation on/off} x {lazy reads on/off}.
//
// Every faulted run must
//   (a) reach the SAME outcome on every rank (all complete, or all throw the
//       same typed error class — never a deadlock, never divergence),
//   (b) produce a byte-identical file whenever it completes, and
//   (c) be fully deterministic from the fault seed: the same seed gives
//       identical TcioStats (summed over ranks) and an identical makespan.
//
// The base fault seed is TCIO_FAULT_SEED (default 1) so scripts/
// ci_fault_soak.sh can sweep schedules without recompiling.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/env.h"
#include "mpi/agreement.h"
#include "mpi/runtime.h"
#include "tcio/file.h"

namespace tcio::core {
namespace {

enum class Fault { kNone, kTransientFs, kPermanentOst, kRmaDrop, kStraggler };

struct MatrixParam {
  Fault fault;
  bool node_agg;
  bool lazy;
  /// >= 0: arm the legacy one-shot write-fault shim at this FS write call.
  std::int64_t one_shot = -1;
};

std::string paramName(const ::testing::TestParamInfo<MatrixParam>& info) {
  const char* f = "";
  switch (info.param.fault) {
    case Fault::kNone: f = "none"; break;
    case Fault::kTransientFs: f = "transient"; break;
    case Fault::kPermanentOst: f = "permost"; break;
    case Fault::kRmaDrop: f = "rmadrop"; break;
    case Fault::kStraggler: f = "straggler"; break;
  }
  return std::string(f) + (info.param.node_agg ? "_nodeagg" : "") +
         (info.param.lazy ? "_lazy" : "_eager");
}

constexpr int kProcs = 6;
constexpr Bytes kTotal = 12 * 1024;
constexpr Bytes kBlock = 24;  // interleaved op size (kTotal % kBlock == 0)
constexpr Bytes kSegment = 512;

std::byte expected(Offset off, int rank) {
  return static_cast<std::byte>((rank * 131 + off * 7) % 249 + 1);
}

/// The sequential reference model every completed run must match.
std::vector<std::byte> referenceFile() {
  std::vector<std::byte> ref(static_cast<std::size_t>(kTotal));
  for (Offset off = 0; off < kTotal; ++off) {
    const int rank = static_cast<int>((off / kBlock) % kProcs);
    ref[static_cast<std::size_t>(off)] = expected(off, rank);
  }
  return ref;
}

// Flattened TcioStats for exact determinism comparison. Order matters only
// for the named indices below.
constexpr std::size_t kStatFields = 17;
constexpr std::size_t kTransientIdx = 10;
constexpr std::size_t kRetriesIdx = 11;
constexpr std::size_t kChunksRemappedIdx = 13;
constexpr std::size_t kRmaDropsIdx = 14;

std::array<std::int64_t, kStatFields> flatten(const TcioStats& s) {
  return {s.writes,
          s.reads,
          s.level1_flushes,
          s.collective_fetches,
          s.independent_fetches,
          s.bytes_written,
          s.bytes_read,
          s.node_exchanges,
          s.intranode_bytes,
          s.internode_messages_saved,
          s.degraded.fs_transient_faults,
          s.degraded.fs_retries,
          s.degraded.fs_retry_giveups,
          s.degraded.chunks_remapped,
          s.degraded.rma_drops,
          s.degraded.fallback_exchanges,
          s.degraded.two_sided_fallback ? 1 : 0};
}

/// One run's full fingerprint (everything determinism must reproduce).
struct RunResult {
  std::int32_t outcome = 0;  // agreed mpi::CapturedError code; 0 = completed
  SimTime makespan = 0;
  std::uint32_t crc = 0;
  Bytes file_size = 0;
  std::array<std::int64_t, kStatFields> stats_sum{};

  bool operator==(const RunResult&) const = default;
};

RunResult runMatrix(const MatrixParam& p, std::uint64_t seed) {
  const std::vector<std::byte> ref = referenceFile();

  fs::FsConfig fcfg;
  fcfg.num_osts = 3;
  fcfg.stripe_size = kSegment;
  fcfg.default_stripe_count = 3;
  fs::Filesystem fsys(fcfg);
  if (p.one_shot >= 0) fsys.injectWriteFault(p.one_shot);

  mpi::JobConfig jc;
  jc.num_ranks = kProcs;
  jc.net.ranks_per_node = 3;  // two nodes, so node aggregation crosses a NIC
  if (p.fault == Fault::kRmaDrop) {
    jc.net.faults.enabled = true;
    jc.net.faults.seed = seed;
    // Node aggregation issues far fewer (coalesced) RMA payloads, so it
    // needs a higher per-payload rate for drops to occur at this scale.
    jc.net.faults.rma_drop_rate = p.node_agg ? 0.5 : 0.1;
  }

  TcioConfig cfg;
  cfg.segment_size = kSegment;
  cfg.segments_per_rank = kTotal / (kSegment * kProcs) + 1;
  cfg.use_onesided = true;
  cfg.lazy_reads = p.lazy;
  cfg.node_aggregation = p.node_agg;
  switch (p.fault) {
    case Fault::kNone:
      break;
    case Fault::kTransientFs:
      cfg.faults.enabled = true;
      cfg.faults.seed = seed;
      cfg.faults.fs_transient_write_rate = 0.08;
      cfg.faults.fs_transient_read_rate = 0.04;
      cfg.retry.max_attempts = 6;
      break;
    case Fault::kPermanentOst:
      cfg.faults.enabled = true;
      cfg.faults.seed = seed;
      cfg.faults.fail_ost = 1;
      cfg.faults.fail_ost_after_requests = 10;
      break;
    case Fault::kRmaDrop:
      // The degradation ladder only applies to the plain one-sided path.
      if (p.lazy && !p.node_agg) cfg.rma_fault_fallback_threshold = 3;
      break;
    case Fault::kStraggler:
      cfg.faults.enabled = true;
      cfg.faults.seed = seed;
      cfg.faults.straggler_ost = 0;
      cfg.faults.straggler_multiplier = 8.0;
      break;
  }
  if (p.one_shot >= 0) cfg.retry.max_attempts = 2;

  std::array<std::int32_t, kProcs> outcome{};
  std::array<std::array<std::int64_t, kStatFields>, kProcs> per_rank{};

  const mpi::JobResult jr = mpi::runJob(jc, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    auto accumulate = [&per_rank, r](const TcioStats& s) {
      const auto flat = flatten(s);
      for (std::size_t i = 0; i < kStatFields; ++i) {
        per_rank[static_cast<std::size_t>(r)][i] += flat[i];
      }
    };
    mpi::CapturedError err;
    try {
      {
        File f(comm, fsys, "matrix.dat", fs::kWrite | fs::kCreate, cfg);
        std::vector<std::byte> buf(static_cast<std::size_t>(kBlock));
        for (Offset cur = 0; cur < kTotal; cur += kBlock) {
          if (static_cast<int>((cur / kBlock) % kProcs) != r) continue;
          for (Bytes i = 0; i < kBlock; ++i) {
            buf[static_cast<std::size_t>(i)] = expected(cur + i, r);
          }
          f.writeAt(cur, buf.data(), kBlock);
        }
        f.close();
        accumulate(f.stats());
      }
      {
        File f(comm, fsys, "matrix.dat", fs::kRead, cfg);
        const Bytes per = kTotal / kProcs;
        const Offset my_begin = r * per;
        std::vector<std::byte> got(static_cast<std::size_t>(per));
        f.readAt(my_begin, got.data(), per);
        f.fetch();
        for (Bytes i = 0; i < per; ++i) {
          ASSERT_EQ(got[static_cast<std::size_t>(i)],
                    ref[static_cast<std::size_t>(my_begin + i)])
              << "read-back mismatch at " << my_begin + i;
        }
        f.close();
        accumulate(f.stats());
      }
    } catch (const std::exception& e) {
      err.capture(e);
    }
    outcome[static_cast<std::size_t>(r)] = err.code;
  });

  // (a) all ranks observed the same outcome.
  for (int r = 1; r < kProcs; ++r) {
    EXPECT_EQ(outcome[static_cast<std::size_t>(r)], outcome[0])
        << "rank " << r << " diverged from rank 0";
  }

  RunResult res;
  res.outcome = outcome[0];
  res.makespan = jr.makespan;
  for (const auto& rank_stats : per_rank) {
    for (std::size_t i = 0; i < kStatFields; ++i) {
      res.stats_sum[i] += rank_stats[i];
    }
  }
  if (res.outcome == 0) {
    res.file_size = fsys.peekSize("matrix.dat");
    std::vector<std::byte> contents(static_cast<std::size_t>(res.file_size));
    fsys.peek("matrix.dat", 0, contents);
    res.crc = crc32(contents);
  }
  return res;
}

std::uint32_t referenceCrc() {
  const auto ref = referenceFile();
  return crc32(std::span<const std::byte>(ref.data(), ref.size()));
}

class TcioFaultMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

INSTANTIATE_TEST_SUITE_P(
    Matrix, TcioFaultMatrixTest,
    ::testing::Values(
        MatrixParam{Fault::kTransientFs, false, true},
        MatrixParam{Fault::kTransientFs, false, false},
        MatrixParam{Fault::kTransientFs, true, true},
        MatrixParam{Fault::kPermanentOst, false, true},
        MatrixParam{Fault::kPermanentOst, false, false},
        MatrixParam{Fault::kPermanentOst, true, true},
        MatrixParam{Fault::kRmaDrop, false, true},
        MatrixParam{Fault::kRmaDrop, false, false},
        MatrixParam{Fault::kRmaDrop, true, true},
        MatrixParam{Fault::kStraggler, false, true},
        MatrixParam{Fault::kStraggler, false, false},
        MatrixParam{Fault::kStraggler, true, true}),
    paramName);

TEST_P(TcioFaultMatrixTest, SameOutcomeByteIdenticalAndDeterministic) {
  const MatrixParam p = GetParam();
  const auto seed =
      static_cast<std::uint64_t>(envInt64("TCIO_FAULT_SEED", 1));

  // Healthy baseline with the same exchange configuration.
  const RunResult base =
      runMatrix({Fault::kNone, p.node_agg, p.lazy}, seed);
  ASSERT_EQ(base.outcome, 0);
  ASSERT_EQ(base.crc, referenceCrc());
  ASSERT_EQ(base.file_size, kTotal);

  // (c) same seed, same schedule: the entire fingerprint must reproduce.
  const RunResult a = runMatrix(p, seed);
  const RunResult b = runMatrix(p, seed);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.crc, b.crc);
  EXPECT_EQ(a.file_size, b.file_size);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.stats_sum, b.stats_sum);

  switch (p.fault) {
    case Fault::kNone:
      break;
    case Fault::kTransientFs:
      // Retries absorb transients: completed, byte-identical.
      ASSERT_EQ(a.outcome, 0);
      EXPECT_EQ(a.crc, base.crc);
      EXPECT_EQ(a.file_size, kTotal);
      break;
    case Fault::kPermanentOst:
      // Graceful degradation: the run completes on the surviving OSTs and
      // reports the failover — never silent, never divergent.
      ASSERT_EQ(a.outcome, 0)
          << "permanent OST failure should degrade, not abort";
      EXPECT_EQ(a.crc, base.crc);
      EXPECT_GT(a.stats_sum[kChunksRemappedIdx], 0);
      break;
    case Fault::kRmaDrop:
      // Drops delay (and may trip the two-sided fallback); data survives.
      ASSERT_EQ(a.outcome, 0);
      EXPECT_EQ(a.crc, base.crc);
      EXPECT_GT(a.stats_sum[kRmaDropsIdx], 0);
      break;
    case Fault::kStraggler:
      ASSERT_EQ(a.outcome, 0);
      EXPECT_EQ(a.crc, base.crc);
      // An 8x slower OST must show up in the virtual makespan.
      EXPECT_GT(a.makespan, base.makespan);
      break;
  }
}

// Acceptance: a single injected transient FS fault (the legacy one-shot
// shim) completes byte-identical in EVERY exchange configuration once a
// retry budget is granted, wherever in the drain it lands.
TEST(TcioFaultMatrixOneShotTest, SingleTransientFaultCompletesByteIdentical) {
  const auto seed =
      static_cast<std::uint64_t>(envInt64("TCIO_FAULT_SEED", 1));
  const struct {
    bool node_agg;
    bool lazy;
  } modes[] = {{false, true}, {false, false}, {true, true}};
  for (const auto& m : modes) {
    for (const std::int64_t after : {0, 3, 17}) {
      MatrixParam p{Fault::kNone, m.node_agg, m.lazy, after};
      const RunResult r = runMatrix(p, seed);
      ASSERT_EQ(r.outcome, 0)
          << "one-shot fault at write call " << after << " not absorbed";
      EXPECT_EQ(r.crc, referenceCrc());
      EXPECT_EQ(r.file_size, kTotal);
      EXPECT_EQ(r.stats_sum[kTransientIdx], 1);
      EXPECT_EQ(r.stats_sum[kRetriesIdx], 1);
    }
  }
}

// A collective open of a missing file (read mode) must throw the SAME typed
// FileNotFound on every rank and leave the communicator usable — rank 0
// opens before the barrier, so an uncaptured throw there would strand the
// other ranks inside the barrier and desynchronize every later collective.
TEST(TcioFaultMatrixOpenTest, MissingFileThrowsFileNotFoundOnEveryRank) {
  fs::FsConfig fcfg;
  fcfg.num_osts = 2;
  fs::Filesystem fsys(fcfg);
  mpi::JobConfig jc;
  jc.num_ranks = 4;
  mpi::runJob(jc, [&](mpi::Comm& comm) {
    std::uint8_t caught = 0;
    try {
      File f(comm, fsys, "missing.dat", fs::kRead, TcioConfig{});
      ADD_FAILURE() << "rank " << comm.rank() << " opened a missing file";
    } catch (const FileNotFound& e) {
      caught = std::string(e.what()).find("missing.dat") != std::string::npos
                   ? 1
                   : 0;
    }
    // The communicator must still be collectively usable after the agreed
    // throw (this allreduce deadlocks if any rank is still in the open).
    comm.allreduce(&caught, 1, mpi::ReduceOp::kMin);
    EXPECT_EQ(caught, 1) << "rank " << comm.rank();
  });
}

}  // namespace
}  // namespace tcio::core
