#include "tcio/segment_map.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tcio::core {
namespace {

TEST(SegmentMapTest, PaperEquationsSmallExample) {
  // Paper Fig. 3: segments round-robin over ranks.
  SegmentMap m(100, 4);
  EXPECT_EQ(m.segmentOf(0), 0);
  EXPECT_EQ(m.segmentOf(99), 0);
  EXPECT_EQ(m.segmentOf(100), 1);
  EXPECT_EQ(m.rankOf(0), 0);
  EXPECT_EQ(m.rankOf(1), 1);
  EXPECT_EQ(m.rankOf(4), 0);    // wraps
  EXPECT_EQ(m.slotOf(4), 1);    // second segment of rank 0
  EXPECT_EQ(m.dispOf(457), 57);
}

TEST(SegmentMapTest, InverseMappingRoundTrips) {
  SegmentMap m(1 << 20, 7);
  for (SegmentId g = 0; g < 1000; ++g) {
    EXPECT_EQ(m.segmentFor(m.rankOf(g), m.slotOf(g)), g);
  }
}

class SegmentMapProperty : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, SegmentMapProperty,
                         ::testing::Values(1, 2, 3, 16, 64, 1024));

TEST_P(SegmentMapProperty, OffsetDecompositionIsExact) {
  const int P = GetParam();
  SegmentMap m(4096, P);
  Rng rng(static_cast<std::uint64_t>(P));
  for (int i = 0; i < 2000; ++i) {
    const Offset off = rng.uniformInt(0, 1LL << 40);
    const SegmentId g = m.segmentOf(off);
    // offset reconstructs from (segment, displacement)
    EXPECT_EQ(m.baseOf(g) + m.dispOf(off), off);
    // owner in range
    EXPECT_GE(m.rankOf(g), 0);
    EXPECT_LT(m.rankOf(g), P);
    // slot consistent with round-robin
    EXPECT_EQ(m.segmentFor(m.rankOf(g), m.slotOf(g)), g);
  }
}

TEST_P(SegmentMapProperty, ConsecutiveSegmentsBalanceAcrossRanks) {
  const int P = GetParam();
  SegmentMap m(64, P);
  std::vector<int> counts(static_cast<std::size_t>(P), 0);
  const int total = P * 13;
  for (SegmentId g = 0; g < total; ++g) {
    ++counts[static_cast<std::size_t>(m.rankOf(g))];
  }
  for (int c : counts) EXPECT_EQ(c, 13);  // perfectly balanced
}

}  // namespace
}  // namespace tcio::core
