// Fail-stop crash matrix: every CrashPoint x {node_agg, lazy, eager}.
//
// One rank is scheduled to die (CrashSchedule); every run must
//   (a) terminate on every rank — survivors complete their collectives and
//       the crashed rank unwinds with RankCrashedError; never a deadlock,
//   (b) lose no journaled byte: outside the region the harness knows was
//       lost (the crashed rank's un-journaled tail), the final file is
//       byte-identical to a healthy run with the same exchange config, and
//   (c) reproduce bit-exactly from the seed: same outcome codes, same
//       masked CRC, same summed TcioStats, same makespan, run-to-run.
//
// The workload interleaves each rank over a private contiguous region with
// a mid-job flush, so the crash schedule exercises an independent-write
// crash (kMidRma at a segment crossing), collective-entry crashes at both
// flush and close, a torn journal record (kMidJournal), and a mid-drain
// death after all journaling completed (kMidClose — fully recoverable).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/env.h"
#include "mpi/agreement.h"
#include "mpi/runtime.h"
#include "tcio/file.h"

namespace tcio::core {
namespace {

enum class Mode { kNodeAgg, kLazy, kEager };

struct CrashParam {
  CrashPoint point;
  std::int64_t after;  // nth occurrence of the point on the victim
  Mode mode;
  bool journal = true;
  /// Extra fault classes layered on top of the crash (combined tests).
  bool straggler = false;
  bool transient_eio = false;
};

std::string paramName(const ::testing::TestParamInfo<CrashParam>& info) {
  const char* p = "";
  switch (info.param.point) {
    case CrashPoint::kAtCollective:
      p = info.param.after == 0 ? "at_flush" : "at_close";
      break;
    case CrashPoint::kMidRma: p = "mid_rma"; break;
    case CrashPoint::kMidJournal: p = "mid_journal"; break;
    case CrashPoint::kMidClose: p = "mid_close"; break;
    case CrashPoint::kMidRecovery: p = "mid_recovery"; break;
  }
  const char* m = "";
  switch (info.param.mode) {
    case Mode::kNodeAgg: m = "_nodeagg"; break;
    case Mode::kLazy: m = "_lazy"; break;
    case Mode::kEager: m = "_eager"; break;
  }
  std::string name = std::string(p) + m;
  if (!info.param.journal) name += "_nojournal";
  if (info.param.straggler) name += "_straggler";
  if (info.param.transient_eio) name += "_eio";
  return name;
}

constexpr int kProcs = 6;
constexpr Rank kVictim = 2;
constexpr Bytes kSegment = 512;
constexpr std::int64_t kSegsPerRank = 4;
constexpr Bytes kPerRank = kSegment * kSegsPerRank;  // contiguous region
constexpr Bytes kTotal = kPerRank * kProcs;
constexpr Bytes kChunk = 256;  // write granularity (2 chunks per segment)

std::byte expected(Offset off) {
  return static_cast<std::byte>((off * 13 + off / kSegment) % 251 + 1);
}

std::vector<std::byte> referenceFile() {
  std::vector<std::byte> ref(static_cast<std::size_t>(kTotal));
  for (Offset off = 0; off < kTotal; ++off) {
    ref[static_cast<std::size_t>(off)] = expected(off);
  }
  return ref;
}

// Flattened stats (base + crash-recovery counters) for exact determinism
// comparison across runs.
constexpr std::size_t kStatFields = 16;
constexpr std::size_t kRanksCrashedIdx = 7;
constexpr std::size_t kTakenOverIdx = 8;
constexpr std::size_t kReplayedIdx = 9;
constexpr std::size_t kReplayedBytesIdx = 10;
constexpr std::size_t kTornIdx = 11;
constexpr std::size_t kUnjournaledLostIdx = 12;
constexpr std::size_t kTransientIdx = 13;

std::array<std::int64_t, kStatFields> flatten(const TcioStats& s) {
  return {s.writes,
          s.level1_flushes,
          s.bytes_written,
          s.node_exchanges,
          s.intranode_bytes,
          s.internode_messages_saved,
          s.degraded.chunks_remapped,
          s.degraded.ranks_crashed,
          s.degraded.segments_taken_over,
          s.degraded.journal_records_replayed,
          s.degraded.journal_bytes_replayed,
          s.degraded.journal_torn_records,
          s.degraded.unjournaled_segments_lost,
          s.degraded.fs_transient_faults,
          s.degraded.fs_retries,
          s.degraded.fallback_exchanges};
}

struct RunResult {
  std::array<std::int32_t, kProcs> outcome{};  // CapturedError codes
  SimTime makespan = 0;
  Bytes file_size = 0;
  std::vector<std::byte> contents;
  std::array<std::int64_t, kStatFields> stats_sum{};
};

TcioConfig makeCfg(const CrashParam& p, std::uint64_t seed, bool crash) {
  TcioConfig cfg;
  cfg.segment_size = kSegment;
  cfg.segments_per_rank = kSegsPerRank;
  cfg.use_onesided = true;
  cfg.lazy_reads = p.mode != Mode::kEager;
  cfg.node_aggregation = p.mode == Mode::kNodeAgg;
  cfg.crash.enabled = true;  // healthy baseline runs the same protocol
  cfg.crash.journal = p.journal;
  cfg.faults.seed = seed;
  if (crash) {
    cfg.faults.crashes.push_back({kVictim, p.point, p.after});
  }
  if (p.straggler) {
    cfg.faults.enabled = true;
    cfg.faults.straggler_ost = 0;
    cfg.faults.straggler_multiplier = 8.0;
  }
  if (p.transient_eio) {
    cfg.faults.enabled = true;
    cfg.faults.fs_transient_write_rate = 0.2;
    cfg.retry.max_attempts = 6;
  }
  return cfg;
}

RunResult runCrash(const CrashParam& p, std::uint64_t seed, bool crash) {
  fs::FsConfig fcfg;
  fcfg.num_osts = 3;
  fcfg.stripe_size = kSegment;
  fcfg.default_stripe_count = 3;
  fs::Filesystem fsys(fcfg);

  mpi::JobConfig jc;
  jc.num_ranks = kProcs;
  jc.net.ranks_per_node = 3;  // two nodes: leader failover crosses a NIC
  jc.seed = seed;

  const TcioConfig cfg = makeCfg(p, seed, crash);

  RunResult res;
  std::array<std::array<std::int64_t, kStatFields>, kProcs> per_rank{};
  const mpi::JobResult jr = mpi::runJob(jc, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    mpi::CapturedError err;
    File f(comm, fsys, "crash.dat", fs::kWrite | fs::kCreate, cfg);
    try {
      const Offset begin = r * kPerRank;
      // Round 0: first half of the region, then a collective flush.
      std::vector<std::byte> buf(static_cast<std::size_t>(kChunk));
      auto writeRange = [&](Offset lo, Offset hi) {
        for (Offset cur = lo; cur < hi; cur += kChunk) {
          for (Bytes i = 0; i < kChunk; ++i) {
            buf[static_cast<std::size_t>(i)] = expected(cur + i);
          }
          f.writeAt(cur, buf.data(), kChunk);
        }
      };
      writeRange(begin, begin + kPerRank / 2);
      f.flush();
      writeRange(begin + kPerRank / 2, begin + kPerRank);
      f.close();
    } catch (const RankCrashedError& e) {
      err.capture(e);
    } catch (const std::exception& e) {
      err.capture(e);
    }
    res.outcome[static_cast<std::size_t>(r)] = err.code;
    const auto flat = flatten(f.stats());
    for (std::size_t i = 0; i < kStatFields; ++i) {
      per_rank[static_cast<std::size_t>(r)][i] = flat[i];
    }
  });

  res.makespan = jr.makespan;
  for (const auto& rank_stats : per_rank) {
    for (std::size_t i = 0; i < kStatFields; ++i) {
      res.stats_sum[i] += rank_stats[i];
    }
  }
  res.file_size = fsys.peekSize("crash.dat");
  res.contents.resize(static_cast<std::size_t>(res.file_size));
  fsys.peek("crash.dat", 0, res.contents);
  return res;
}

/// Regions the harness knows may have died with the victim: everything the
/// victim wrote (its un-journaled level-1 tail is a subset), and — with
/// journaling off — every segment the victim *owned* (other ranks' bytes
/// that had already been put into its level-2 window died too).
std::vector<std::pair<Offset, Bytes>> lostMask(bool journal) {
  std::vector<std::pair<Offset, Bytes>> mask;
  mask.emplace_back(kVictim * kPerRank, kPerRank);
  if (!journal) {
    const std::int64_t total_segs = kProcs * kSegsPerRank;
    for (std::int64_t g = 0; g < total_segs; ++g) {
      if (g % kProcs == kVictim) mask.emplace_back(g * kSegment, kSegment);
    }
  }
  return mask;
}

std::uint32_t maskedCrc(std::vector<std::byte> bytes,
                        const std::vector<std::pair<Offset, Bytes>>& mask) {
  for (const auto& [off, len] : mask) {
    for (Bytes i = 0; i < len; ++i) {
      const auto idx = static_cast<std::size_t>(off + i);
      if (idx < bytes.size()) bytes[idx] = std::byte{0};
    }
  }
  return crc32(bytes);
}

class TcioCrashMatrixTest : public ::testing::TestWithParam<CrashParam> {};

INSTANTIATE_TEST_SUITE_P(
    Matrix, TcioCrashMatrixTest,
    ::testing::Values(
        // Every crash point in every exchange mode.
        CrashParam{CrashPoint::kAtCollective, 0, Mode::kNodeAgg},
        CrashParam{CrashPoint::kAtCollective, 0, Mode::kLazy},
        CrashParam{CrashPoint::kAtCollective, 0, Mode::kEager},
        CrashParam{CrashPoint::kAtCollective, 1, Mode::kNodeAgg},
        CrashParam{CrashPoint::kAtCollective, 1, Mode::kLazy},
        CrashParam{CrashPoint::kAtCollective, 1, Mode::kEager},
        CrashParam{CrashPoint::kMidRma, 0, Mode::kNodeAgg},
        CrashParam{CrashPoint::kMidRma, 0, Mode::kLazy},
        CrashParam{CrashPoint::kMidRma, 0, Mode::kEager},
        CrashParam{CrashPoint::kMidJournal, 0, Mode::kNodeAgg},
        CrashParam{CrashPoint::kMidJournal, 0, Mode::kLazy},
        CrashParam{CrashPoint::kMidJournal, 0, Mode::kEager},
        CrashParam{CrashPoint::kMidClose, 0, Mode::kNodeAgg},
        CrashParam{CrashPoint::kMidClose, 0, Mode::kLazy},
        CrashParam{CrashPoint::kMidClose, 0, Mode::kEager},
        // Unjournaled loss is reported, never silent.
        CrashParam{CrashPoint::kMidClose, 0, Mode::kLazy, /*journal=*/false},
        // Combined faults: a straggler OST (skew under the liveness window)
        // and transient EIO (retry loops) layered on a crash.
        CrashParam{CrashPoint::kAtCollective, 1, Mode::kLazy, true,
                   /*straggler=*/true, false},
        CrashParam{CrashPoint::kMidRma, 0, Mode::kLazy, true, false,
                   /*transient_eio=*/true}),
    paramName);

TEST_P(TcioCrashMatrixTest, SurvivorsCompleteMaskedIdenticalDeterministic) {
  const CrashParam p = GetParam();
  const auto seed = static_cast<std::uint64_t>(envInt64("TCIO_FAULT_SEED", 1));

  // Healthy baseline: same exchange config, crash protocol armed but no
  // schedule. Must produce the exact reference bytes.
  const RunResult base = runCrash(p, seed, /*crash=*/false);
  for (int r = 0; r < kProcs; ++r) {
    ASSERT_EQ(base.outcome[static_cast<std::size_t>(r)], 0)
        << "healthy rank " << r << " failed";
  }
  ASSERT_EQ(base.file_size, kTotal);
  ASSERT_EQ(base.contents, referenceFile());

  const RunResult a = runCrash(p, seed, /*crash=*/true);

  // (a) the victim unwound with RankCrashedError; every survivor completed.
  for (int r = 0; r < kProcs; ++r) {
    const auto code = a.outcome[static_cast<std::size_t>(r)];
    if (r == kVictim) {
      EXPECT_EQ(code, mpi::CapturedError::kRankCrashed);
    } else {
      EXPECT_EQ(code, 0) << "survivor rank " << r << " failed";
    }
  }
  EXPECT_EQ(a.file_size, kTotal);  // rank 5's tail still reaches the file

  // (b) no journaled byte lost: outside the known-lost mask the file is
  // byte-identical to the healthy run.
  const auto mask = lostMask(p.journal);
  EXPECT_EQ(maskedCrc(a.contents, mask), maskedCrc(base.contents, mask));

  // Recovery is visible in the survivors' stats, never silent.
  EXPECT_GT(a.stats_sum[kRanksCrashedIdx], 0);
  EXPECT_GT(a.stats_sum[kTakenOverIdx], 0);
  if (!p.journal) {
    EXPECT_GT(a.stats_sum[kUnjournaledLostIdx], 0);
  } else if (p.point == CrashPoint::kMidJournal) {
    // The schedule tears the victim's first journal record.
    EXPECT_GT(a.stats_sum[kTornIdx], 0);
  } else {
    EXPECT_GT(a.stats_sum[kReplayedIdx], 0);
    EXPECT_GT(a.stats_sum[kReplayedBytesIdx], 0);
  }
  // How many transients a given seed draws is a property of that seed; only
  // the default schedule is pinned to actually exercise the combined path.
  // (Swept seeds still verify convergence, masking, and determinism above.)
  if (p.transient_eio && seed == 1) {
    EXPECT_GT(a.stats_sum[kTransientIdx], 0);
  }

  // (c) seed-exact determinism: full fingerprint reproduces run-to-run.
  const RunResult b = runCrash(p, seed, /*crash=*/true);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.file_size, b.file_size);
  EXPECT_EQ(a.contents, b.contents);
  EXPECT_EQ(a.stats_sum, b.stats_sum);
}

// A mid-drain death with journaling on is *fully* recoverable: every byte
// of the victim's segments was journaled (write-ahead of the RMA epoch) or
// already drained, so the final file matches the healthy run exactly.
TEST(TcioCrashRecoveryTest, MidCloseCrashRecoversByteIdentical) {
  for (const Mode mode : {Mode::kNodeAgg, Mode::kLazy, Mode::kEager}) {
    const CrashParam p{CrashPoint::kMidClose, 0, mode};
    const RunResult a = runCrash(p, /*seed=*/1, /*crash=*/true);
    EXPECT_EQ(a.file_size, kTotal);
    EXPECT_EQ(a.contents, referenceFile())
        << "journaled bytes lost in mode " << static_cast<int>(mode);
    EXPECT_GT(a.stats_sum[kReplayedIdx], 0);
  }
}

// Context-reservation renewal: more sequential shrink events than one
// reserved block (kMaxShrinks) covers. Nine victims die at nine *distinct*
// collective rounds — nine shrinks — so the job must renew its reservation
// from the survivor set mid-flight. Every victim byte was journaled before
// the first death, so the final file must come back byte-identical.
TEST(TcioShrinkRenewalTest, SurvivesMoreShrinksThanOneReservation) {
  constexpr int P = 32;
  constexpr int kVictims = 9;
  static_assert(kVictims > File::kMaxShrinks,
                "the test must outlive one reservation block");
  constexpr std::int64_t kSpr = 2;
  constexpr Bytes kRegion = kSegment * kSpr;
  constexpr Bytes kFileBytes = kRegion * P;

  fs::FsConfig fcfg;
  fcfg.num_osts = 3;
  fcfg.stripe_size = kSegment;
  fs::Filesystem fsys(fcfg);

  TcioConfig cfg;
  cfg.segment_size = kSegment;
  cfg.segments_per_rank = kSpr;
  cfg.crash.enabled = true;
  cfg.faults.seed = 11;
  for (int j = 0; j < kVictims; ++j) {
    // Victim j dies entering flush round j+2: round 1 journaled every byte,
    // and one death per round makes each one a separate shrink event.
    cfg.faults.crashes.push_back({static_cast<Rank>(P - kVictims + j),
                                  CrashPoint::kAtCollective,
                                  /*after=*/1 + j});
  }

  mpi::JobConfig jc;
  jc.num_ranks = P;
  jc.net.ranks_per_node = 4;
  std::array<std::int32_t, P> outcome{};
  std::array<std::int64_t, P> deaths_seen{};
  mpi::runJob(jc, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    mpi::CapturedError err;
    File f(comm, fsys, "renew.dat", fs::kWrite | fs::kCreate, cfg);
    try {
      std::vector<std::byte> buf(static_cast<std::size_t>(kRegion));
      for (Bytes i = 0; i < kRegion; ++i) {
        buf[static_cast<std::size_t>(i)] = expected(r * kRegion + i);
      }
      f.writeAt(r * kRegion, buf.data(), kRegion);
      for (int round = 0; round < kVictims + 1; ++round) f.flush();
      f.close();
    } catch (const std::exception& e) {
      err.capture(e);
    }
    outcome[static_cast<std::size_t>(r)] = err.code;
    deaths_seen[static_cast<std::size_t>(r)] =
        f.stats().degraded.ranks_crashed;
  });

  for (int r = 0; r < P; ++r) {
    if (r >= P - kVictims) {
      EXPECT_EQ(outcome[static_cast<std::size_t>(r)],
                mpi::CapturedError::kRankCrashed)
          << "victim " << r;
    } else {
      EXPECT_EQ(outcome[static_cast<std::size_t>(r)], 0) << "survivor " << r;
      EXPECT_EQ(deaths_seen[static_cast<std::size_t>(r)], kVictims)
          << "survivor " << r << " missed a shrink event";
    }
  }
  ASSERT_EQ(fsys.peekSize("renew.dat"), kFileBytes);
  std::vector<std::byte> got(static_cast<std::size_t>(kFileBytes));
  fsys.peek("renew.dat", 0, got);
  for (Offset off = 0; off < kFileBytes; ++off) {
    ASSERT_EQ(got[static_cast<std::size_t>(off)], expected(off))
        << "byte " << off << " lost across renewed shrinks";
  }
}

// Elastic takeover under mass death: 11 of 16 ranks die — one of them INSIDE
// an in-flight recovery epoch — leaving 5 survivors to absorb 22 orphaned
// segments against a spare budget of only 2 slots each. The spare-slot
// exhaustion must trigger collective window remaps (grow + slot relocation),
// the mid-recovery cascade must be agreed from within the first death's
// epoch and its orphans transitively reassigned, and the file must still
// close byte-identical to a fault-free run.
TEST(TcioElasticTakeoverTest, MassDeathGrowsTakeoverCapacity) {
  constexpr int P = 16;
  constexpr std::int64_t kSpr = 2;
  constexpr Bytes kRegion = kSegment * kSpr;
  constexpr Bytes kFileBytes = kRegion * P;
  // Victims: rank 8 dies first (flush round 2); rank 0 — deterministically
  // the first round-robin adopter of rank 8's orphans — dies mid-replay of
  // that very takeover (CrashPoint::kMidRecovery); nine more die one per
  // later flush round. 11 > the 8-victim bar and > kMaxShrinks, so the
  // context-reservation renewal path runs under elastic growth too.
  constexpr int kVictims = 11;
  const std::vector<Rank> late = {5, 6, 7, 9, 10, 11, 12, 13, 14};

  fs::FsConfig fcfg;
  fcfg.num_osts = 3;
  fcfg.stripe_size = kSegment;
  fs::Filesystem fsys(fcfg);

  TcioConfig cfg;
  cfg.segment_size = kSegment;
  cfg.segments_per_rank = kSpr;
  cfg.crash.enabled = true;
  cfg.faults.seed = 13;
  cfg.faults.crashes.push_back({8, CrashPoint::kAtCollective, /*after=*/1});
  cfg.faults.crashes.push_back({0, CrashPoint::kMidRecovery, /*after=*/0});
  for (std::size_t j = 0; j < late.size(); ++j) {
    cfg.faults.crashes.push_back({late[j], CrashPoint::kAtCollective,
                                  /*after=*/2 + static_cast<std::int64_t>(j)});
  }

  mpi::JobConfig jc;
  jc.num_ranks = P;
  jc.net.ranks_per_node = 4;
  std::array<std::int32_t, P> outcome{};
  std::array<std::int64_t, P> deaths_seen{};
  std::array<std::int64_t, P> remaps{};
  std::array<std::int64_t, P> taken_over{};
  mpi::runJob(jc, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    mpi::CapturedError err;
    File f(comm, fsys, "elastic.dat", fs::kWrite | fs::kCreate, cfg);
    try {
      std::vector<std::byte> buf(static_cast<std::size_t>(kRegion));
      for (Bytes i = 0; i < kRegion; ++i) {
        buf[static_cast<std::size_t>(i)] = expected(r * kRegion + i);
      }
      f.writeAt(r * kRegion, buf.data(), kRegion);
      for (int round = 0; round < kVictims + 2; ++round) f.flush();
      f.close();
    } catch (const std::exception& e) {
      err.capture(e);
    }
    outcome[static_cast<std::size_t>(r)] = err.code;
    deaths_seen[static_cast<std::size_t>(r)] = f.stats().degraded.ranks_crashed;
    remaps[static_cast<std::size_t>(r)] = f.stats().degraded.window_remaps;
    taken_over[static_cast<std::size_t>(r)] =
        f.stats().degraded.segments_taken_over;
  });

  std::int64_t total_taken = 0;
  for (int r = 0; r < P; ++r) {
    const auto i = static_cast<std::size_t>(r);
    const bool victim = r == 0 || r == 8 ||
                        std::find(late.begin(), late.end(), r) != late.end();
    if (victim) {
      EXPECT_EQ(outcome[i], mpi::CapturedError::kRankCrashed) << "victim " << r;
    } else {
      EXPECT_EQ(outcome[i], 0) << "survivor " << r;
      EXPECT_EQ(deaths_seen[i], kVictims)
          << "survivor " << r << " missed a death (cascade not agreed?)";
      // Window growth is collective: every survivor remapped, at least once.
      EXPECT_GE(remaps[i], 1) << "survivor " << r << " never grew its window";
      total_taken += taken_over[i];
    }
  }
  // Every orphan landed on a survivor; the mid-replay victim's own segments
  // and its half-adopted orphans were all transitively re-adopted.
  EXPECT_GE(total_taken, kVictims * kSpr);
  ASSERT_EQ(fsys.peekSize("elastic.dat"), kFileBytes);
  std::vector<std::byte> got(static_cast<std::size_t>(kFileBytes));
  fsys.peek("elastic.dat", 0, got);
  for (Offset off = 0; off < kFileBytes; ++off) {
    ASSERT_EQ(got[static_cast<std::size_t>(off)], expected(off))
        << "byte " << off << " lost across elastic takeover";
  }
}

// MDS open/close faults (the new FaultPlan class) are absorbed by the
// FsClient retry loops; with retries exhausted the typed error surfaces
// identically on every rank.
TEST(TcioMdsFaultTest, OpenCloseFaultsAbsorbedByRetry) {
  fs::FsConfig fcfg;
  fcfg.num_osts = 2;
  fcfg.stripe_size = kSegment;
  fs::Filesystem fsys(fcfg);
  TcioConfig cfg;
  cfg.segment_size = kSegment;
  cfg.segments_per_rank = 2;
  cfg.faults.enabled = true;
  cfg.faults.seed = 7;
  cfg.faults.mds_open_fail_rate = 0.4;
  cfg.faults.mds_close_fail_rate = 0.4;
  cfg.retry.max_attempts = 12;
  mpi::JobConfig jc;
  jc.num_ranks = 4;
  mpi::runJob(jc, [&](mpi::Comm& comm) {
    File f(comm, fsys, "mds.dat", fs::kWrite | fs::kCreate, cfg);
    std::vector<std::byte> buf(static_cast<std::size_t>(kSegment),
                               std::byte{0x3c});
    f.writeAt(comm.rank() * kSegment, buf.data(), kSegment);
    f.close();  // completes: retries absorb the MDS transients
  });
  EXPECT_EQ(fsys.peekSize("mds.dat"), 4 * kSegment);
  EXPECT_GT(fsys.stats().opens, 4);  // retried opens hit the MDS again
}

}  // namespace
}  // namespace tcio::core
