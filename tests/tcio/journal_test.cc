// Unit tests for the crash-consistent segment journal: frame round-trip,
// torn-tail handling (short frames, bad magic, CRC mismatch), commit
// truncation, and the costed read path.
#include "tcio/journal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fs/client.h"
#include "fs/filesystem.h"
#include "mpi/runtime.h"

namespace tcio::core {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 2;
  c.stripe_size = 1024;
  return c;
}

std::vector<std::byte> payload(std::size_t n, int salt) {
  std::vector<std::byte> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::byte>((salt * 31 + i) % 251);
  }
  return p;
}

void withClient(const std::function<void(fs::FsClient&)>& body) {
  fs::Filesystem fsys(fsCfg());
  mpi::JobConfig jc;
  jc.num_ranks = 1;
  mpi::runJob(jc, [&](mpi::Comm& comm) {
    fs::FsClient fc(fsys, comm.proc());
    body(fc);
  });
}

TEST(JournalTest, AppendReadParseRoundTrip) {
  withClient([](fs::FsClient& fc) {
    const std::string path = journalPath("data.dat", 3);
    EXPECT_EQ(path, "data.dat.wal.3");
    Journal j(fc, path);
    const auto p0 = payload(100, 1);
    const auto p1 = payload(37, 2);
    j.append(5, 64, p0);
    j.append(9, 0, p1);
    EXPECT_EQ(j.recordsAppended(), 2);
    EXPECT_EQ(j.bytesAppended(),
              2 * Journal::kHeaderBytes + 100 + 37);
    const Journal::Parsed parsed = Journal::readAndParse(fc, path);
    ASSERT_EQ(parsed.records.size(), 2u);
    EXPECT_EQ(parsed.torn_records, 0);
    EXPECT_EQ(parsed.bytes_replayable, 137);
    EXPECT_EQ(parsed.records[0].seg, 5);
    EXPECT_EQ(parsed.records[0].disp, 64);
    EXPECT_EQ(parsed.records[0].payload, p0);
    EXPECT_EQ(parsed.records[1].seg, 9);
    EXPECT_EQ(parsed.records[1].disp, 0);
    EXPECT_EQ(parsed.records[1].payload, p1);
  });
}

TEST(JournalTest, TornTailDroppedIntactPrefixSurvives) {
  withClient([](fs::FsClient& fc) {
    const std::string path = journalPath("data.dat", 0);
    Journal j(fc, path);
    const auto good = payload(64, 3);
    j.append(1, 0, good);
    // Crash mid-append: only 10 bytes of the second frame hit the platter.
    j.append(2, 128, payload(64, 4), /*torn_prefix=*/10);
    const Journal::Parsed parsed = Journal::readAndParse(fc, path);
    ASSERT_EQ(parsed.records.size(), 1u);
    EXPECT_EQ(parsed.records[0].payload, good);
    EXPECT_EQ(parsed.torn_records, 1);
    EXPECT_EQ(parsed.bytes_replayable, 64);
  });
}

TEST(JournalTest, TornAtZeroBytesLeavesNoTrace) {
  withClient([](fs::FsClient& fc) {
    const std::string path = journalPath("data.dat", 0);
    Journal j(fc, path);
    j.append(1, 0, payload(16, 5), /*torn_prefix=*/0);
    const Journal::Parsed parsed = Journal::readAndParse(fc, path);
    EXPECT_TRUE(parsed.records.empty());
    // Nothing reached the device, so there is no torn frame to count.
    EXPECT_EQ(parsed.torn_records, 0);
  });
}

TEST(JournalTest, CorruptPayloadDroppedAndScanContinues) {
  const auto p0 = payload(48, 6);
  std::vector<std::byte> raw;
  {
    // Build two valid frames by hand via a real journal, then flip a bit.
    fs::Filesystem fsys(fsCfg());
    mpi::JobConfig jc;
    jc.num_ranks = 1;
    mpi::runJob(jc, [&](mpi::Comm& comm) {
      fs::FsClient fc(fsys, comm.proc());
      Journal j(fc, "x.wal.0");
      j.append(0, 0, p0);
      j.append(1, 0, p0);
      fs::FsFile f = fc.open("x.wal.0", fs::kRead);
      raw.resize(static_cast<std::size_t>(fc.size(f)));
      fc.pread(f, 0, raw.data(), static_cast<Bytes>(raw.size()));
      fc.close(f);
    });
  }
  raw[static_cast<std::size_t>(Journal::kHeaderBytes) + 5] ^= std::byte{0x40};
  const Journal::Parsed parsed = Journal::parse(raw);
  // First frame's body is corrupt but its framing is intact: a silent bit
  // flip, not a torn append. The record is dropped, counted as corrupt, and
  // the scan continues — the second record is still replayable.
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].seg, 1);
  EXPECT_EQ(parsed.records[0].payload, p0);
  EXPECT_EQ(parsed.corrupt_records, 1);
  EXPECT_EQ(parsed.torn_records, 0);
  EXPECT_EQ(parsed.bytes_replayable, 48);
}

TEST(JournalTest, CorruptThenTornCountsBothAndKeepsIntactPrefix) {
  const auto p0 = payload(40, 9);
  std::vector<std::byte> raw;
  {
    fs::Filesystem fsys(fsCfg());
    mpi::JobConfig jc;
    jc.num_ranks = 1;
    mpi::runJob(jc, [&](mpi::Comm& comm) {
      fs::FsClient fc(fsys, comm.proc());
      Journal j(fc, "y.wal.0");
      j.append(0, 0, p0);                         // intact
      j.append(1, 8, p0);                         // will be bit-flipped
      j.append(2, 16, p0, /*torn_prefix=*/12);    // torn mid-append
      fs::FsFile f = fc.open("y.wal.0", fs::kRead);
      raw.resize(static_cast<std::size_t>(fc.size(f)));
      fc.pread(f, 0, raw.data(), static_cast<Bytes>(raw.size()));
      fc.close(f);
    });
  }
  const auto frame = static_cast<std::size_t>(Journal::kHeaderBytes) + 40;
  raw[frame + static_cast<std::size_t>(Journal::kHeaderBytes) + 3] ^=
      std::byte{0x01};
  const Journal::Parsed parsed = Journal::parse(raw);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].seg, 0);
  EXPECT_EQ(parsed.corrupt_records, 1);
  EXPECT_EQ(parsed.torn_records, 1);
}

TEST(JournalTest, CommitTruncatesAndLogStaysUsable) {
  withClient([](fs::FsClient& fc) {
    const std::string path = journalPath("data.dat", 1);
    Journal j(fc, path);
    j.append(4, 8, payload(32, 7));
    j.commit();
    EXPECT_EQ(j.bytesAppended(), 0);
    EXPECT_EQ(j.recordsAppended(), 0);
    EXPECT_TRUE(Journal::readAndParse(fc, path).records.empty());
    // The log survives a commit: post-commit appends parse normally.
    const auto p = payload(16, 8);
    j.append(6, 256, p);
    const Journal::Parsed parsed = Journal::readAndParse(fc, path);
    ASSERT_EQ(parsed.records.size(), 1u);
    EXPECT_EQ(parsed.records[0].seg, 6);
    EXPECT_EQ(parsed.records[0].payload, p);
  });
}

TEST(JournalTest, MissingFileParsesEmpty) {
  withClient([](fs::FsClient& fc) {
    const Journal::Parsed parsed =
        Journal::readAndParse(fc, "never-created.wal.9");
    EXPECT_TRUE(parsed.records.empty());
    EXPECT_EQ(parsed.torn_records, 0);
  });
}

TEST(JournalTest, GarbageMagicCountsTorn) {
  std::vector<std::byte> raw(64, std::byte{0xab});
  const Journal::Parsed parsed = Journal::parse(raw);
  EXPECT_TRUE(parsed.records.empty());
  EXPECT_EQ(parsed.torn_records, 1);
}

}  // namespace
}  // namespace tcio::core
