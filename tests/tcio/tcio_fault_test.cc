// Failure injection: a file-system write fault during tcio_close must
// surface as a clean FsError on EVERY rank — no deadlock, and no rank
// returning success while the file is damaged.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/runtime.h"
#include "tcio/file.h"

namespace tcio::core {
namespace {

void runFaultedClose(TcioConfig cfg, int ranks_per_node) {
  fs::FsConfig fcfg;
  fcfg.num_osts = 2;
  fcfg.stripe_size = 1024;
  fs::Filesystem fsys(fcfg);
  mpi::JobConfig jc;
  jc.num_ranks = 4;
  jc.net.ranks_per_node = ranks_per_node;
  mpi::runJob(jc, [&](mpi::Comm& comm) {
    File f(comm, fsys, "fault.dat", fs::kWrite | fs::kCreate, cfg);
    std::vector<std::byte> buf(static_cast<std::size_t>(cfg.segment_size),
                               std::byte{0x5a});
    f.writeAt(comm.rank() * cfg.segment_size, buf.data(), cfg.segment_size);
    if (comm.rank() == 0) {
      fsys.injectWriteFault(0);  // the next OST write request fails
    }
    comm.barrier();
    bool caught = false;
    try {
      f.close();
    } catch (const FsError&) {
      caught = true;
    }
    EXPECT_TRUE(caught) << "rank " << comm.rank()
                        << " missed the injected fault";
    EXPECT_FALSE(f.isOpen());
    // Collective agreement: every rank (not just the one whose pwrite blew
    // up) must have observed the failure.
    std::uint8_t all = caught ? 1 : 0;
    comm.allreduce(&all, 1, mpi::ReduceOp::kMin);
    EXPECT_EQ(all, 1);
  });
}

TEST(TcioFaultTest, CloseFaultSurfacesOnEveryRank) {
  TcioConfig cfg;
  cfg.segment_size = 512;
  cfg.segments_per_rank = 2;
  runFaultedClose(cfg, /*ranks_per_node=*/12);
}

TEST(TcioFaultTest, CloseFaultSurfacesUnderNodeAggregation) {
  TcioConfig cfg;
  cfg.segment_size = 512;
  cfg.segments_per_rank = 2;
  cfg.node_aggregation = true;
  runFaultedClose(cfg, /*ranks_per_node=*/2);
}

TEST(TcioFaultTest, CloseFaultSurfacesInTwoSidedMode) {
  TcioConfig cfg;
  cfg.segment_size = 512;
  cfg.segments_per_rank = 2;
  cfg.use_onesided = false;
  runFaultedClose(cfg, /*ranks_per_node=*/12);
}

}  // namespace
}  // namespace tcio::core
