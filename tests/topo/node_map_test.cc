// NodeMap topology derivation and NodeAggregator leader-exchange tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "mpi/runtime.h"
#include "topo/node_aggregator.h"
#include "topo/node_map.h"

namespace tcio::topo {
namespace {

mpi::JobConfig cfg(int procs, int ranks_per_node) {
  mpi::JobConfig c;
  c.num_ranks = procs;
  c.net.ranks_per_node = ranks_per_node;
  return c;
}

/// Deterministic payload byte for (source rank, destination node, index).
std::byte pattern(Rank src, int dst, std::size_t i) {
  return static_cast<std::byte>(
      (static_cast<std::size_t>(src) * 131 + static_cast<std::size_t>(dst) * 17 +
       i * 3) %
      251);
}

std::vector<std::byte> payloadFor(Rank src, int dst, std::size_t len) {
  std::vector<std::byte> v(len);
  for (std::size_t i = 0; i < len; ++i) v[i] = pattern(src, dst, i);
  return v;
}

TEST(NodeMapTest, MatchesNetworkTopology) {
  runJob(cfg(8, 3), [](mpi::Comm& comm) {
    NodeMap map(comm);
    // 8 ranks at 3/node -> nodes {0,1,2} {3,4,5} {6,7}.
    EXPECT_EQ(map.numNodes(), 3);
    EXPECT_EQ(map.myNode(), comm.rank() / 3);
    EXPECT_EQ(map.maxNodeSize(), 3);
    for (Rank r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(map.nodeOf(r), r / 3);
    }
    EXPECT_EQ(map.leaderOf(0), 0);
    EXPECT_EQ(map.leaderOf(1), 3);
    EXPECT_EQ(map.leaderOf(2), 6);
    EXPECT_EQ(map.isLeader(), comm.rank() % 3 == 0);
    const std::vector<Rank>& mine = map.ranksOnNode(map.myNode());
    EXPECT_EQ(static_cast<int>(mine.size()), map.nodeSize());
    EXPECT_EQ(map.nodeComm().size(), comm.rank() < 6 ? 3 : 2);
    EXPECT_EQ(map.nodeRank(), comm.rank() % 3);
    EXPECT_EQ(mine[static_cast<std::size_t>(map.nodeRank())], comm.rank());
  });
}

TEST(NodeMapTest, SingleNodeDegeneratesToOneGroup) {
  runJob(cfg(4, 12), [](mpi::Comm& comm) {
    NodeMap map(comm);
    EXPECT_EQ(map.numNodes(), 1);
    EXPECT_EQ(map.myNode(), 0);
    EXPECT_EQ(map.leaderOf(0), 0);
    EXPECT_EQ(map.nodeComm().size(), comm.size());
  });
}

TEST(NodeAggregatorTest, ExchangeRoutesFramesBetweenLeaders) {
  runJob(cfg(6, 2), [](mpi::Comm& comm) {
    NodeMap map(comm);
    ASSERT_EQ(map.numNodes(), 3);
    NodeAggregator agg(map, /*slot_bytes=*/4096);
    // Every rank addresses a distinct-length payload to every node.
    std::vector<std::vector<std::byte>> per_node;
    for (int d = 0; d < map.numNodes(); ++d) {
      per_node.push_back(payloadFor(
          comm.rank(), d, 16 + static_cast<std::size_t>(comm.rank()) * 8 +
                              static_cast<std::size_t>(d)));
    }
    const auto frames = agg.exchange(per_node);
    ASSERT_EQ(static_cast<int>(frames.size()), map.numNodes());
    if (!map.isLeader()) {
      for (const auto& fs : frames) EXPECT_TRUE(fs.empty());
      return;
    }
    // Leader of node d holds, per source node s, one frame per rank of s in
    // ascending rank order, with the payload that rank addressed to d.
    const int d = map.myNode();
    for (int s = 0; s < map.numNodes(); ++s) {
      const std::vector<Rank>& srcs = map.ranksOnNode(s);
      ASSERT_EQ(frames[static_cast<std::size_t>(s)].size(), srcs.size());
      for (std::size_t q = 0; q < srcs.size(); ++q) {
        const auto& fb = frames[static_cast<std::size_t>(s)][q];
        EXPECT_EQ(fb.src, srcs[q]);
        EXPECT_EQ(fb.data,
                  payloadFor(srcs[q], d,
                             16 + static_cast<std::size_t>(srcs[q]) * 8 +
                                 static_cast<std::size_t>(d)));
      }
    }
  });
}

TEST(NodeAggregatorTest, PayloadsLargerThanSlotTakeMultipleRounds) {
  runJob(cfg(4, 2), [](mpi::Comm& comm) {
    NodeMap map(comm);
    // Tiny slots force chunked staging rounds.
    NodeAggregator agg(map, /*slot_bytes=*/64);
    std::vector<std::vector<std::byte>> per_node(
        static_cast<std::size_t>(map.numNodes()));
    const int other = 1 - map.myNode();
    per_node[static_cast<std::size_t>(other)] =
        payloadFor(comm.rank(), other, 1000);
    const auto frames = agg.exchange(per_node);
    if (map.isLeader()) {
      EXPECT_GT(agg.stats().rounds, 1);
      const auto& from_other = frames[static_cast<std::size_t>(other)];
      ASSERT_EQ(from_other.size(), 2u);  // both ranks of the other node
      for (const auto& fb : from_other) {
        EXPECT_EQ(fb.data, payloadFor(fb.src, map.myNode(), 1000));
      }
    }
  });
}

TEST(NodeAggregatorTest, ScatterToRanksDeliversPerRankBlobs) {
  runJob(cfg(6, 3), [](mpi::Comm& comm) {
    NodeMap map(comm);
    NodeAggregator agg(map, /*slot_bytes=*/1024);
    std::vector<std::vector<std::byte>> per_rank;
    if (map.isLeader()) {
      for (int q = 0; q < map.nodeSize(); ++q) {
        const Rank target = map.ranksOnNode(map.myNode())[
            static_cast<std::size_t>(q)];
        per_rank.push_back(payloadFor(target, map.myNode(), 40));
      }
    }
    const std::vector<std::byte> mine = agg.scatterToRanks(std::move(per_rank));
    EXPECT_EQ(mine, payloadFor(comm.rank(), map.myNode(), 40));
  });
}

TEST(NodeAggregatorTest, RotationMovesTheActiveLeaderEachExchange) {
  runJob(cfg(6, 3), [](mpi::Comm& comm) {
    NodeMap map(comm);
    NodeAggregator agg(map, /*slot_bytes=*/4096, /*rotate_leaders=*/true);
    ASSERT_TRUE(agg.rotatesLeaders());
    std::vector<Rank> leaders_seen;
    for (int round = 1; round <= 3; ++round) {
      // The round counter advances at the start of each exchange, so the
      // k-th exchange of node n is led by its (k % size)-th rank.
      const Rank expect_leader =
          map.ranksOnNode(map.myNode())[static_cast<std::size_t>(
              round % map.nodeSize())];
      leaders_seen.push_back(expect_leader);
      std::vector<std::vector<std::byte>> per_node;
      for (int d = 0; d < map.numNodes(); ++d) {
        per_node.push_back(payloadFor(
            comm.rank(), d,
            32 + static_cast<std::size_t>(round) * 8 +
                static_cast<std::size_t>(d)));
      }
      const auto frames = agg.exchange(per_node);
      EXPECT_EQ(agg.round(), round);
      EXPECT_EQ(agg.activeLeaderOf(map.myNode()), expect_leader);
      EXPECT_EQ(agg.isActiveLeader(), comm.rank() == expect_leader);
      if (comm.rank() != expect_leader) {
        for (const auto& fr : frames) EXPECT_TRUE(fr.empty());
        continue;
      }
      // The rotated leader receives every rank's frame, data intact.
      const int d = map.myNode();
      for (int s = 0; s < map.numNodes(); ++s) {
        const std::vector<Rank>& srcs = map.ranksOnNode(s);
        ASSERT_EQ(frames[static_cast<std::size_t>(s)].size(), srcs.size());
        for (std::size_t q = 0; q < srcs.size(); ++q) {
          EXPECT_EQ(frames[static_cast<std::size_t>(s)][q].data,
                    payloadFor(srcs[q], d,
                               32 + static_cast<std::size_t>(round) * 8 +
                                   static_cast<std::size_t>(d)));
        }
      }
    }
    // The NIC/membus hot spot actually moved: distinct leaders across rounds.
    std::sort(leaders_seen.begin(), leaders_seen.end());
    leaders_seen.erase(
        std::unique(leaders_seen.begin(), leaders_seen.end()),
        leaders_seen.end());
    EXPECT_GE(leaders_seen.size(), 2u);
  });
}

TEST(NodeAggregatorTest, ScatterFollowsTheRotatedLeader) {
  // Regression: scatterToRanks must scatter from the round's ACTIVE leader
  // (where exchange() left the data), not from the node's static rank 0.
  runJob(cfg(6, 3), [](mpi::Comm& comm) {
    NodeMap map(comm);
    NodeAggregator agg(map, /*slot_bytes=*/1024, /*rotate_leaders=*/true);
    for (int round = 0; round < 3; ++round) {
      // Advance the rotation with a real exchange first.
      std::vector<std::vector<std::byte>> per_node(
          static_cast<std::size_t>(map.numNodes()));
      per_node[static_cast<std::size_t>(map.myNode())] =
          payloadFor(comm.rank(), map.myNode(), 24);
      agg.exchange(per_node);
      std::vector<std::vector<std::byte>> per_rank;
      if (agg.isActiveLeader()) {
        for (int q = 0; q < map.nodeSize(); ++q) {
          const Rank target = map.ranksOnNode(map.myNode())[
              static_cast<std::size_t>(q)];
          per_rank.push_back(
              payloadFor(target, round, 16 + static_cast<std::size_t>(q)));
        }
      }
      const std::vector<std::byte> mine =
          agg.scatterToRanks(std::move(per_rank));
      EXPECT_EQ(mine,
                payloadFor(comm.rank(), round,
                           16 + static_cast<std::size_t>(map.nodeRank())));
    }
  });
}

}  // namespace
}  // namespace tcio::topo
