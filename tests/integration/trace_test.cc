// Observability: the shared event trace records network, file-system, and
// TCIO activity with consistent counts and well-formed intervals.
#include <gtest/gtest.h>

#include "fs/client.h"
#include "mpi/mpi.h"
#include "tcio/file.h"

namespace tcio {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 2;
  c.stripe_size = 1024;
  return c;
}

TEST(TraceTest, RecordsNetworkFsAndTcioEvents) {
  fs::Filesystem fsys(fsCfg());
  mpi::JobConfig jc;
  jc.num_ranks = 4;
  std::int64_t flushes = 0;

  sim::Engine::Config ec;
  ec.num_ranks = jc.num_ranks;
  sim::Engine engine(ec);
  jc.net.num_ranks = jc.num_ranks;
  net::Network network(jc.net);
  mpi::World world(engine, network, jc.mpi);
  world.trace().enable(true);
  network.setTrace(&world.trace());
  fsys.setTrace(&world.trace());

  engine.run([&](sim::Proc& proc) {
    mpi::Comm comm(world, proc);
    core::TcioConfig cfg;
    cfg.segment_size = 512;
    cfg.segments_per_rank = 8;
    core::File f(comm, fsys, "trace.dat",
                 fs::kRead | fs::kWrite | fs::kCreate, cfg);
    for (int i = 0; i < 8; ++i) {
      const std::int64_t v = comm.rank() * 10 + i;
      f.writeAt((static_cast<Offset>(i) * 4 + comm.rank()) * 8, &v, 8);
    }
    f.flush();
    std::int64_t got = 0;
    f.readAt(comm.rank() * 8, &got, 8);
    f.fetch();
    f.close();
    if (comm.rank() == 0) flushes = f.stats().level1_flushes;
    // stats() is per-rank; sum flush events across ranks below.
  });

  const sim::Trace& trace = world.trace();
  EXPECT_GT(trace.countWithPrefix("net."), 0);
  EXPECT_GT(trace.countWithPrefix("fs.write"), 0);
  EXPECT_GT(trace.countWithPrefix("tcio.flush"), 0);
  EXPECT_EQ(trace.countWithPrefix("tcio.fetch"), 4 * 2);  // fetch + close
  (void)flushes;

  // Well-formed intervals, valid ranks.
  for (const auto& e : trace.events()) {
    EXPECT_LE(e.begin, e.end) << e.category;
    EXPECT_GE(e.rank, 0);
    EXPECT_LT(e.rank, 4);
    EXPECT_GE(e.bytes, 0);
  }
}

TEST(TraceTest, DisabledTraceRecordsNothingAndCostsNothing) {
  fs::Filesystem fsys(fsCfg());
  sim::Engine::Config ec;
  ec.num_ranks = 2;
  sim::Engine engine(ec);
  net::NetworkConfig nc;
  nc.num_ranks = 2;
  net::Network network(nc);
  mpi::World world(engine, network, {});
  network.setTrace(&world.trace());
  fsys.setTrace(&world.trace());
  // Trace NOT enabled.
  engine.run([&](sim::Proc& proc) {
    mpi::Comm comm(world, proc);
    fs::FsClient fc(fsys, comm.proc());
    fs::FsFile f = fc.open("off.dat", fs::kWrite | fs::kCreate);
    const int v = 1;
    fc.pwrite(f, comm.rank() * 4, &v, 4);
    fc.close(f);
  });
  EXPECT_TRUE(world.trace().events().empty());
}

TEST(TraceTest, FsWriteEventCountMatchesStats) {
  fs::Filesystem fsys(fsCfg());
  sim::Engine::Config ec;
  ec.num_ranks = 3;
  sim::Engine engine(ec);
  net::NetworkConfig nc;
  nc.num_ranks = 3;
  net::Network network(nc);
  mpi::World world(engine, network, {});
  world.trace().enable(true);
  fsys.setTrace(&world.trace());
  engine.run([&](sim::Proc& proc) {
    mpi::Comm comm(world, proc);
    fs::FsClient fc(fsys, comm.proc());
    fs::FsFile f = fc.open("cnt.dat", fs::kWrite | fs::kCreate);
    std::vector<std::byte> buf(3000, std::byte{1});
    fc.pwrite(f, comm.rank() * 3000, buf.data(), 3000);
    fc.close(f);
  });
  EXPECT_EQ(world.trace().countWithPrefix("fs.write"),
            fsys.stats().write_requests);
}

}  // namespace
}  // namespace tcio
