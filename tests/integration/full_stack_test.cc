// Cross-module integration tests: scenarios that exercise the whole stack
// (engine + network + MPI + FS + MPI-IO + TCIO + ART) together.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "art/checkpoint.h"
#include "fs/client.h"
#include "mpi/mpi.h"
#include "mpiio/file.h"
#include "tcio/tcio.h"
#include "workload/synthetic.h"

namespace tcio {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 4;
  c.stripe_size = 4096;
  return c;
}

mpi::JobConfig job(int p, std::uint64_t seed = 1) {
  mpi::JobConfig c;
  c.num_ranks = p;
  c.seed = seed;
  return c;
}

core::TcioConfig tcioCfg() {
  core::TcioConfig c;
  c.segment_size = 4096;
  c.segments_per_rank = 16;
  return c;
}

TEST(FullStackTest, WriteWithEightRanksReadWithFour) {
  // The file format is rank-count independent: a snapshot written by an
  // 8-rank job must restore exactly in a 4-rank job (different segment
  // round-robin, different level-2 layout).
  fs::Filesystem fsys(fsCfg());
  const Bytes per_rank = 2000;
  mpi::runJob(job(8), [&](mpi::Comm& comm) {
    core::File f(comm, fsys, "x.dat", fs::kWrite | fs::kCreate, tcioCfg());
    std::vector<std::byte> mine(static_cast<std::size_t>(per_rank));
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = static_cast<std::byte>((comm.rank() * 31 + i) % 251);
    }
    f.writeAt(comm.rank() * per_rank, mine.data(), per_rank);
    f.close();
  });
  mpi::runJob(job(4), [&](mpi::Comm& comm) {
    core::File f(comm, fsys, "x.dat", fs::kRead, tcioCfg());
    // Each of the 4 ranks reads two of the original 8 ranks' regions.
    for (int orig = comm.rank() * 2; orig < comm.rank() * 2 + 2; ++orig) {
      std::vector<std::byte> got(static_cast<std::size_t>(per_rank));
      f.readAt(orig * per_rank, got.data(), per_rank);
      f.fetch();
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], static_cast<std::byte>((orig * 31 + i) % 251))
            << "orig rank " << orig << " byte " << i;
      }
    }
    f.close();
  });
}

TEST(FullStackTest, TcioFileReadableThroughPlainMpiio) {
  // TCIO writes plain bytes: an MPI-IO (or POSIX) reader sees the same file.
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(4), [&](mpi::Comm& comm) {
    {
      core::File f(comm, fsys, "plain.dat", fs::kWrite | fs::kCreate,
                   tcioCfg());
      const std::int64_t v = comm.rank() * 11;
      f.writeAt(comm.rank() * 8, &v, 8);
      f.close();
    }
    io::MpioFile f = io::MpioFile::open(comm, fsys, "plain.dat", fs::kRead);
    std::int64_t got = -1;
    f.readAt(((comm.rank() + 1) % 4) * 8, &got, 8);
    EXPECT_EQ(got, ((comm.rank() + 1) % 4) * 11);
    f.close();
  });
}

TEST(FullStackTest, OcioFileReadableThroughTcio) {
  fs::Filesystem fsys(fsCfg());
  const int P = 4;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    {
      io::MpioFile f = io::MpioFile::open(comm, fsys, "o2t.dat",
                                          fs::kWrite | fs::kCreate);
      std::vector<std::int32_t> data(32);
      std::iota(data.begin(), data.end(), comm.rank() * 100);
      f.writeAtAll(comm.rank() * 128, data.data(), 128);
      f.close();
    }
    core::File f(comm, fsys, "o2t.dat", fs::kRead, tcioCfg());
    std::int32_t got = -1;
    const int peer = (comm.rank() + 2) % P;
    f.readAt(peer * 128 + 4 * 5, &got, 4);  // peer's 6th int
    f.fetch();
    EXPECT_EQ(got, peer * 100 + 5);
    f.close();
  });
}

TEST(FullStackTest, TwoFilesConcurrentlyTcioAndOcio) {
  // One job drives a TCIO file and an OCIO file at the same time; their
  // traffic shares the network and file system without interference.
  fs::Filesystem fsys(fsCfg());
  const int P = 4;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    core::File t(comm, fsys, "t.dat", fs::kWrite | fs::kCreate, tcioCfg());
    io::MpioFile o = io::MpioFile::open(comm, fsys, "o.dat",
                                        fs::kWrite | fs::kCreate);
    for (int i = 0; i < 8; ++i) {
      const std::int64_t tv = comm.rank() * 1000 + i;
      t.writeAt((static_cast<Offset>(i) * P + comm.rank()) * 8, &tv, 8);
    }
    std::vector<std::int64_t> ov(8);
    std::iota(ov.begin(), ov.end(), comm.rank() * 500);
    o.writeAtAll(comm.rank() * 64, ov.data(), 64);
    t.close();
    o.close();
  });
  EXPECT_EQ(fsys.peekSize("t.dat"), 4 * 8 * 8);
  EXPECT_EQ(fsys.peekSize("o.dat"), 4 * 64);
  // Spot-check both files.
  std::int64_t v = 0;
  fsys.peek("t.dat", (3 * 4 + 2) * 8, {reinterpret_cast<std::byte*>(&v), 8});
  EXPECT_EQ(v, 2 * 1000 + 3);
  fsys.peek("o.dat", 64 * 3 + 8, {reinterpret_cast<std::byte*>(&v), 8});
  EXPECT_EQ(v, 3 * 500 + 1);
}

TEST(FullStackTest, SubcommunicatorsDriveSeparateTcioFiles) {
  // Two halves of the job each run an independent TCIO file on their own
  // sub-communicator.
  fs::Filesystem fsys(fsCfg());
  const int P = 8;
  mpi::runJob(job(P), [&](mpi::Comm& world) {
    mpi::Comm sub = world.split(world.rank() / 4, world.rank());
    const std::string name =
        world.rank() < 4 ? "half0.dat" : "half1.dat";
    core::File f(sub, fsys, name, fs::kWrite | fs::kCreate, tcioCfg());
    const std::int64_t v = world.rank();
    f.writeAt(sub.rank() * 8, &v, 8);
    f.close();
  });
  for (int half = 0; half < 2; ++half) {
    const std::string name = half == 0 ? "half0.dat" : "half1.dat";
    ASSERT_EQ(fsys.peekSize(name), 32);
    for (int r = 0; r < 4; ++r) {
      std::int64_t v = -1;
      fsys.peek(name, r * 8, {reinterpret_cast<std::byte*>(&v), 8});
      EXPECT_EQ(v, half * 4 + r);
    }
  }
}

TEST(FullStackTest, ArtSnapshotCrossBackendRestart) {
  // Dump with TCIO, restart with vanilla MPI-IO, and vice versa — the
  // self-describing format decouples writer and reader.
  fs::Filesystem fsys(fsCfg());
  const int P = 4;
  const std::int64_t ntrees = 6;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    std::vector<art::FttTree> trees;
    for (auto id : art::treesOfRank(ntrees, comm.rank(), P)) {
      trees.push_back(art::generateTree(5, id, art::TreeGenConfig{}));
    }
    art::CheckpointConfig tcio_cfg;
    tcio_cfg.backend = art::Backend::kTcio;
    tcio_cfg.tcio = tcioCfg();
    art::CheckpointConfig van_cfg;
    van_cfg.backend = art::Backend::kVanillaMpiio;
    van_cfg.tcio = tcioCfg();

    art::dumpCheckpoint(comm, fsys, "cross.chk", trees, ntrees, tcio_cfg);
    const auto via_vanilla =
        art::loadCheckpoint(comm, fsys, "cross.chk", van_cfg);
    ASSERT_EQ(via_vanilla.size(), trees.size());
    for (std::size_t i = 0; i < trees.size(); ++i) {
      EXPECT_EQ(via_vanilla[i], trees[i]);
    }

    art::dumpCheckpoint(comm, fsys, "cross2.chk", trees, ntrees, van_cfg);
    const auto via_tcio =
        art::loadCheckpoint(comm, fsys, "cross2.chk", tcio_cfg);
    ASSERT_EQ(via_tcio.size(), trees.size());
    for (std::size_t i = 0; i < trees.size(); ++i) {
      EXPECT_EQ(via_tcio[i], trees[i]);
    }
  });
}

TEST(FullStackTest, EndToEndDeterminism) {
  // The complete synthetic benchmark (engine + net + mpi + fs + tcio) is
  // bit-deterministic: identical seeds give identical virtual times.
  auto once = [&] {
    fs::Filesystem fsys(fsCfg());
    workload::BenchmarkConfig cfg;
    cfg.method = workload::Method::kTcio;
    cfg.len_array = 256;
    cfg.tcio = tcioCfg();
    double w = 0, r = 0;
    mpi::runJob(job(8, 42), [&](mpi::Comm& comm) {
      const auto wres = workload::runWritePhase(comm, fsys, cfg);
      const auto rres = workload::runReadPhase(comm, fsys, cfg);
      if (comm.rank() == 0) {
        w = wres.seconds;
        r = rres.seconds;
      }
    });
    return std::pair{w, r};
  };
  const auto first = once();
  EXPECT_EQ(once(), first);
  EXPECT_EQ(once(), first);
}

TEST(FullStackTest, MemoryBudgetReleasedAfterClose) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    {
      core::File f(comm, fsys, "rel.dat", fs::kWrite | fs::kCreate,
                   tcioCfg());
      const std::int64_t v = 1;
      f.writeAt(comm.rank() * 8, &v, 8);
      f.close();
    }
    EXPECT_EQ(comm.memory().used(), 0);  // window + level-1 released
    {
      io::MpioFile f = io::MpioFile::open(comm, fsys, "rel2.dat",
                                          fs::kWrite | fs::kCreate);
      std::vector<std::byte> b(64, std::byte{1});
      f.writeAtAll(comm.rank() * 64, b.data(), 64);
      f.close();
    }
    EXPECT_EQ(comm.memory().used(), 0);  // aggregator buffer released
  });
}

TEST(FullStackTest, JitterChangesTimesButNotBytes) {
  auto run = [&](double jitter) {
    fs::Filesystem fsys(fsCfg());
    mpi::JobConfig jc = job(4);
    jc.net.jitter_mean = jitter;
    SimTime t = 0;
    mpi::runJob(jc, [&](mpi::Comm& comm) {
      core::File f(comm, fsys, "j.dat", fs::kWrite | fs::kCreate, tcioCfg());
      for (int i = 0; i < 16; ++i) {
        const std::int64_t v = comm.rank() * 100 + i;
        f.writeAt((static_cast<Offset>(i) * 4 + comm.rank()) * 8, &v, 8);
      }
      f.close();
      comm.barrier();
      if (comm.rank() == 0) t = comm.proc().now();
    });
    std::vector<std::byte> bytes(static_cast<std::size_t>(
        fsys.peekSize("j.dat")));
    fsys.peek("j.dat", 0, bytes);
    return std::pair{t, bytes};
  };
  const auto calm = run(0.0);
  const auto noisy = run(5e-6);
  EXPECT_NE(calm.first, noisy.first);     // cost model sees the noise
  EXPECT_EQ(calm.second, noisy.second);   // data is bit-identical
}

}  // namespace
}  // namespace tcio
