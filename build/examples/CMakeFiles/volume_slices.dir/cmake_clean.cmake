file(REMOVE_RECURSE
  "CMakeFiles/volume_slices.dir/volume_slices.cpp.o"
  "CMakeFiles/volume_slices.dir/volume_slices.cpp.o.d"
  "volume_slices"
  "volume_slices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
