# Empty dependencies file for volume_slices.
# This may be replaced when dependencies are built.
