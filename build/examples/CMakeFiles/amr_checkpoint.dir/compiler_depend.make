# Empty compiler generated dependencies file for amr_checkpoint.
# This may be replaced when dependencies are built.
