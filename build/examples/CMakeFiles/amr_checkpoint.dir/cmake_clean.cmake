file(REMOVE_RECURSE
  "CMakeFiles/amr_checkpoint.dir/amr_checkpoint.cpp.o"
  "CMakeFiles/amr_checkpoint.dir/amr_checkpoint.cpp.o.d"
  "amr_checkpoint"
  "amr_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
