# Empty dependencies file for iorlike.
# This may be replaced when dependencies are built.
