file(REMOVE_RECURSE
  "CMakeFiles/iorlike.dir/iorlike.cpp.o"
  "CMakeFiles/iorlike.dir/iorlike.cpp.o.d"
  "iorlike"
  "iorlike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iorlike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
