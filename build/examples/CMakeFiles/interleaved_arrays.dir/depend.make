# Empty dependencies file for interleaved_arrays.
# This may be replaced when dependencies are built.
