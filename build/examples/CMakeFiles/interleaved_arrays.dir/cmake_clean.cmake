file(REMOVE_RECURSE
  "CMakeFiles/interleaved_arrays.dir/interleaved_arrays.cpp.o"
  "CMakeFiles/interleaved_arrays.dir/interleaved_arrays.cpp.o.d"
  "interleaved_arrays"
  "interleaved_arrays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interleaved_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
