file(REMOVE_RECURSE
  "CMakeFiles/tcio_workload.dir/synthetic.cc.o"
  "CMakeFiles/tcio_workload.dir/synthetic.cc.o.d"
  "libtcio_workload.a"
  "libtcio_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcio_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
