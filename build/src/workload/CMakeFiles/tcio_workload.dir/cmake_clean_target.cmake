file(REMOVE_RECURSE
  "libtcio_workload.a"
)
