# Empty compiler generated dependencies file for tcio_workload.
# This may be replaced when dependencies are built.
