# Empty dependencies file for tcio_common.
# This may be replaced when dependencies are built.
