file(REMOVE_RECURSE
  "CMakeFiles/tcio_common.dir/env.cc.o"
  "CMakeFiles/tcio_common.dir/env.cc.o.d"
  "CMakeFiles/tcio_common.dir/error.cc.o"
  "CMakeFiles/tcio_common.dir/error.cc.o.d"
  "CMakeFiles/tcio_common.dir/table.cc.o"
  "CMakeFiles/tcio_common.dir/table.cc.o.d"
  "libtcio_common.a"
  "libtcio_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcio_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
