file(REMOVE_RECURSE
  "libtcio_common.a"
)
