file(REMOVE_RECURSE
  "CMakeFiles/tcio_sim.dir/engine.cc.o"
  "CMakeFiles/tcio_sim.dir/engine.cc.o.d"
  "libtcio_sim.a"
  "libtcio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
