file(REMOVE_RECURSE
  "libtcio_sim.a"
)
