# Empty dependencies file for tcio_sim.
# This may be replaced when dependencies are built.
