
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/comm.cc" "src/mpi/CMakeFiles/tcio_mpi.dir/comm.cc.o" "gcc" "src/mpi/CMakeFiles/tcio_mpi.dir/comm.cc.o.d"
  "/root/repo/src/mpi/datatype.cc" "src/mpi/CMakeFiles/tcio_mpi.dir/datatype.cc.o" "gcc" "src/mpi/CMakeFiles/tcio_mpi.dir/datatype.cc.o.d"
  "/root/repo/src/mpi/rma.cc" "src/mpi/CMakeFiles/tcio_mpi.dir/rma.cc.o" "gcc" "src/mpi/CMakeFiles/tcio_mpi.dir/rma.cc.o.d"
  "/root/repo/src/mpi/runtime.cc" "src/mpi/CMakeFiles/tcio_mpi.dir/runtime.cc.o" "gcc" "src/mpi/CMakeFiles/tcio_mpi.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tcio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
