file(REMOVE_RECURSE
  "libtcio_mpi.a"
)
