file(REMOVE_RECURSE
  "CMakeFiles/tcio_mpi.dir/comm.cc.o"
  "CMakeFiles/tcio_mpi.dir/comm.cc.o.d"
  "CMakeFiles/tcio_mpi.dir/datatype.cc.o"
  "CMakeFiles/tcio_mpi.dir/datatype.cc.o.d"
  "CMakeFiles/tcio_mpi.dir/rma.cc.o"
  "CMakeFiles/tcio_mpi.dir/rma.cc.o.d"
  "CMakeFiles/tcio_mpi.dir/runtime.cc.o"
  "CMakeFiles/tcio_mpi.dir/runtime.cc.o.d"
  "libtcio_mpi.a"
  "libtcio_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcio_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
