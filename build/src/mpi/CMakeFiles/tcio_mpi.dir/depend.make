# Empty dependencies file for tcio_mpi.
# This may be replaced when dependencies are built.
