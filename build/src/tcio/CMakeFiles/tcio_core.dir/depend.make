# Empty dependencies file for tcio_core.
# This may be replaced when dependencies are built.
