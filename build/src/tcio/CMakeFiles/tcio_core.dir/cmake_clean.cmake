file(REMOVE_RECURSE
  "CMakeFiles/tcio_core.dir/capi.cc.o"
  "CMakeFiles/tcio_core.dir/capi.cc.o.d"
  "CMakeFiles/tcio_core.dir/file.cc.o"
  "CMakeFiles/tcio_core.dir/file.cc.o.d"
  "libtcio_core.a"
  "libtcio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
