file(REMOVE_RECURSE
  "libtcio_core.a"
)
