file(REMOVE_RECURSE
  "CMakeFiles/tcio_art.dir/checkpoint.cc.o"
  "CMakeFiles/tcio_art.dir/checkpoint.cc.o.d"
  "CMakeFiles/tcio_art.dir/ftt.cc.o"
  "CMakeFiles/tcio_art.dir/ftt.cc.o.d"
  "libtcio_art.a"
  "libtcio_art.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcio_art.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
