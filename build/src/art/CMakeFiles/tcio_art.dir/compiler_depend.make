# Empty compiler generated dependencies file for tcio_art.
# This may be replaced when dependencies are built.
