file(REMOVE_RECURSE
  "libtcio_art.a"
)
