file(REMOVE_RECURSE
  "libtcio_mpiio.a"
)
