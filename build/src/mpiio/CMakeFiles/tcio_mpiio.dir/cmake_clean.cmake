file(REMOVE_RECURSE
  "CMakeFiles/tcio_mpiio.dir/file.cc.o"
  "CMakeFiles/tcio_mpiio.dir/file.cc.o.d"
  "CMakeFiles/tcio_mpiio.dir/twophase.cc.o"
  "CMakeFiles/tcio_mpiio.dir/twophase.cc.o.d"
  "CMakeFiles/tcio_mpiio.dir/view.cc.o"
  "CMakeFiles/tcio_mpiio.dir/view.cc.o.d"
  "CMakeFiles/tcio_mpiio.dir/viewbased.cc.o"
  "CMakeFiles/tcio_mpiio.dir/viewbased.cc.o.d"
  "libtcio_mpiio.a"
  "libtcio_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcio_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
