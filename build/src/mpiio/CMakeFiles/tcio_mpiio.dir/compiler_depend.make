# Empty compiler generated dependencies file for tcio_mpiio.
# This may be replaced when dependencies are built.
