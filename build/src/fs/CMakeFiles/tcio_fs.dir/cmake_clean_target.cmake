file(REMOVE_RECURSE
  "libtcio_fs.a"
)
