# Empty dependencies file for tcio_fs.
# This may be replaced when dependencies are built.
