file(REMOVE_RECURSE
  "CMakeFiles/tcio_fs.dir/cache.cc.o"
  "CMakeFiles/tcio_fs.dir/cache.cc.o.d"
  "CMakeFiles/tcio_fs.dir/client.cc.o"
  "CMakeFiles/tcio_fs.dir/client.cc.o.d"
  "CMakeFiles/tcio_fs.dir/filesystem.cc.o"
  "CMakeFiles/tcio_fs.dir/filesystem.cc.o.d"
  "CMakeFiles/tcio_fs.dir/lock_manager.cc.o"
  "CMakeFiles/tcio_fs.dir/lock_manager.cc.o.d"
  "CMakeFiles/tcio_fs.dir/store.cc.o"
  "CMakeFiles/tcio_fs.dir/store.cc.o.d"
  "libtcio_fs.a"
  "libtcio_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcio_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
