
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/cache.cc" "src/fs/CMakeFiles/tcio_fs.dir/cache.cc.o" "gcc" "src/fs/CMakeFiles/tcio_fs.dir/cache.cc.o.d"
  "/root/repo/src/fs/client.cc" "src/fs/CMakeFiles/tcio_fs.dir/client.cc.o" "gcc" "src/fs/CMakeFiles/tcio_fs.dir/client.cc.o.d"
  "/root/repo/src/fs/filesystem.cc" "src/fs/CMakeFiles/tcio_fs.dir/filesystem.cc.o" "gcc" "src/fs/CMakeFiles/tcio_fs.dir/filesystem.cc.o.d"
  "/root/repo/src/fs/lock_manager.cc" "src/fs/CMakeFiles/tcio_fs.dir/lock_manager.cc.o" "gcc" "src/fs/CMakeFiles/tcio_fs.dir/lock_manager.cc.o.d"
  "/root/repo/src/fs/store.cc" "src/fs/CMakeFiles/tcio_fs.dir/store.cc.o" "gcc" "src/fs/CMakeFiles/tcio_fs.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tcio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
