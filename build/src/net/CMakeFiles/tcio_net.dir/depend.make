# Empty dependencies file for tcio_net.
# This may be replaced when dependencies are built.
