file(REMOVE_RECURSE
  "libtcio_net.a"
)
