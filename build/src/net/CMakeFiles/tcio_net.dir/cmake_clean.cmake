file(REMOVE_RECURSE
  "CMakeFiles/tcio_net.dir/network.cc.o"
  "CMakeFiles/tcio_net.dir/network.cc.o.d"
  "libtcio_net.a"
  "libtcio_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcio_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
