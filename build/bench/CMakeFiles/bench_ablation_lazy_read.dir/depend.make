# Empty dependencies file for bench_ablation_lazy_read.
# This may be replaced when dependencies are built.
