file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_fs.dir/bench_micro_fs.cc.o"
  "CMakeFiles/bench_micro_fs.dir/bench_micro_fs.cc.o.d"
  "bench_micro_fs"
  "bench_micro_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
