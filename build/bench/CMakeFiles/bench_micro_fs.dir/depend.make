# Empty dependencies file for bench_micro_fs.
# This may be replaced when dependencies are built.
