
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_filesize_write.cc" "bench/CMakeFiles/bench_fig6_filesize_write.dir/bench_fig6_filesize_write.cc.o" "gcc" "bench/CMakeFiles/bench_fig6_filesize_write.dir/bench_fig6_filesize_write.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcio/CMakeFiles/tcio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/tcio_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/art/CMakeFiles/tcio_art.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tcio_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/tcio_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/tcio_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
