# Empty compiler generated dependencies file for bench_fig6_filesize_write.
# This may be replaced when dependencies are built.
