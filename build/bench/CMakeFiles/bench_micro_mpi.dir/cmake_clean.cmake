file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_mpi.dir/bench_micro_mpi.cc.o"
  "CMakeFiles/bench_micro_mpi.dir/bench_micro_mpi.cc.o.d"
  "bench_micro_mpi"
  "bench_micro_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
