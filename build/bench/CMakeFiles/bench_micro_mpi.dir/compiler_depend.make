# Empty compiler generated dependencies file for bench_micro_mpi.
# This may be replaced when dependencies are built.
