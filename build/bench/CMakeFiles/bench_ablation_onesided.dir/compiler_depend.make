# Empty compiler generated dependencies file for bench_ablation_onesided.
# This may be replaced when dependencies are built.
