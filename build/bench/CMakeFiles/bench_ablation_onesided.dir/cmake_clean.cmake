file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_onesided.dir/bench_ablation_onesided.cc.o"
  "CMakeFiles/bench_ablation_onesided.dir/bench_ablation_onesided.cc.o.d"
  "bench_ablation_onesided"
  "bench_ablation_onesided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_onesided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
