file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_viewbased.dir/bench_ablation_viewbased.cc.o"
  "CMakeFiles/bench_ablation_viewbased.dir/bench_ablation_viewbased.cc.o.d"
  "bench_ablation_viewbased"
  "bench_ablation_viewbased.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_viewbased.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
