# Empty compiler generated dependencies file for bench_ablation_viewbased.
# This may be replaced when dependencies are built.
