file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cb_nodes.dir/bench_ablation_cb_nodes.cc.o"
  "CMakeFiles/bench_ablation_cb_nodes.dir/bench_ablation_cb_nodes.cc.o.d"
  "bench_ablation_cb_nodes"
  "bench_ablation_cb_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cb_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
