# Empty dependencies file for bench_fig7_filesize_read.
# This may be replaced when dependencies are built.
