# Empty dependencies file for bench_ablation_segment_size.
# This may be replaced when dependencies are built.
