# Empty compiler generated dependencies file for bench_fig10_art_read.
# This may be replaced when dependencies are built.
