file(REMOVE_RECURSE
  "CMakeFiles/bench_probe2.dir/bench_probe2.cc.o"
  "CMakeFiles/bench_probe2.dir/bench_probe2.cc.o.d"
  "bench_probe2"
  "bench_probe2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_probe2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
