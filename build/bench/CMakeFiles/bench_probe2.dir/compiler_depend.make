# Empty compiler generated dependencies file for bench_probe2.
# This may be replaced when dependencies are built.
