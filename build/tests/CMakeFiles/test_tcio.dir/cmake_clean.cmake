file(REMOVE_RECURSE
  "CMakeFiles/test_tcio.dir/tcio/capi_test.cc.o"
  "CMakeFiles/test_tcio.dir/tcio/capi_test.cc.o.d"
  "CMakeFiles/test_tcio.dir/tcio/level1_test.cc.o"
  "CMakeFiles/test_tcio.dir/tcio/level1_test.cc.o.d"
  "CMakeFiles/test_tcio.dir/tcio/segment_map_test.cc.o"
  "CMakeFiles/test_tcio.dir/tcio/segment_map_test.cc.o.d"
  "CMakeFiles/test_tcio.dir/tcio/tcio_edge_test.cc.o"
  "CMakeFiles/test_tcio.dir/tcio/tcio_edge_test.cc.o.d"
  "CMakeFiles/test_tcio.dir/tcio/tcio_file_test.cc.o"
  "CMakeFiles/test_tcio.dir/tcio/tcio_file_test.cc.o.d"
  "CMakeFiles/test_tcio.dir/tcio/tcio_sweep_test.cc.o"
  "CMakeFiles/test_tcio.dir/tcio/tcio_sweep_test.cc.o.d"
  "test_tcio"
  "test_tcio.pdb"
  "test_tcio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
