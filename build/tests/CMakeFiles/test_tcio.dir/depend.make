# Empty dependencies file for test_tcio.
# This may be replaced when dependencies are built.
