file(REMOVE_RECURSE
  "CMakeFiles/test_mpiio.dir/mpiio/collective_buffering_test.cc.o"
  "CMakeFiles/test_mpiio.dir/mpiio/collective_buffering_test.cc.o.d"
  "CMakeFiles/test_mpiio.dir/mpiio/mpio_file_test.cc.o"
  "CMakeFiles/test_mpiio.dir/mpiio/mpio_file_test.cc.o.d"
  "CMakeFiles/test_mpiio.dir/mpiio/split_collective_test.cc.o"
  "CMakeFiles/test_mpiio.dir/mpiio/split_collective_test.cc.o.d"
  "CMakeFiles/test_mpiio.dir/mpiio/twophase_property_test.cc.o"
  "CMakeFiles/test_mpiio.dir/mpiio/twophase_property_test.cc.o.d"
  "CMakeFiles/test_mpiio.dir/mpiio/view_test.cc.o"
  "CMakeFiles/test_mpiio.dir/mpiio/view_test.cc.o.d"
  "CMakeFiles/test_mpiio.dir/mpiio/viewbased_test.cc.o"
  "CMakeFiles/test_mpiio.dir/mpiio/viewbased_test.cc.o.d"
  "test_mpiio"
  "test_mpiio.pdb"
  "test_mpiio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
