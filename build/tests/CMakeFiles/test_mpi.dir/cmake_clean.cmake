file(REMOVE_RECURSE
  "CMakeFiles/test_mpi.dir/mpi/accumulate_test.cc.o"
  "CMakeFiles/test_mpi.dir/mpi/accumulate_test.cc.o.d"
  "CMakeFiles/test_mpi.dir/mpi/collectives2_test.cc.o"
  "CMakeFiles/test_mpi.dir/mpi/collectives2_test.cc.o.d"
  "CMakeFiles/test_mpi.dir/mpi/collectives_test.cc.o"
  "CMakeFiles/test_mpi.dir/mpi/collectives_test.cc.o.d"
  "CMakeFiles/test_mpi.dir/mpi/comm_split_test.cc.o"
  "CMakeFiles/test_mpi.dir/mpi/comm_split_test.cc.o.d"
  "CMakeFiles/test_mpi.dir/mpi/datatype_fuzz_test.cc.o"
  "CMakeFiles/test_mpi.dir/mpi/datatype_fuzz_test.cc.o.d"
  "CMakeFiles/test_mpi.dir/mpi/datatype_test.cc.o"
  "CMakeFiles/test_mpi.dir/mpi/datatype_test.cc.o.d"
  "CMakeFiles/test_mpi.dir/mpi/p2p_test.cc.o"
  "CMakeFiles/test_mpi.dir/mpi/p2p_test.cc.o.d"
  "CMakeFiles/test_mpi.dir/mpi/rma_test.cc.o"
  "CMakeFiles/test_mpi.dir/mpi/rma_test.cc.o.d"
  "test_mpi"
  "test_mpi.pdb"
  "test_mpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
