# Empty compiler generated dependencies file for test_art.
# This may be replaced when dependencies are built.
