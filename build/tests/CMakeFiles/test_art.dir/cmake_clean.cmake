file(REMOVE_RECURSE
  "CMakeFiles/test_art.dir/art/checkpoint_integrity_test.cc.o"
  "CMakeFiles/test_art.dir/art/checkpoint_integrity_test.cc.o.d"
  "CMakeFiles/test_art.dir/art/checkpoint_test.cc.o"
  "CMakeFiles/test_art.dir/art/checkpoint_test.cc.o.d"
  "CMakeFiles/test_art.dir/art/ftt_test.cc.o"
  "CMakeFiles/test_art.dir/art/ftt_test.cc.o.d"
  "test_art"
  "test_art.pdb"
  "test_art[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_art.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
