file(REMOVE_RECURSE
  "CMakeFiles/test_fs.dir/fs/cache_test.cc.o"
  "CMakeFiles/test_fs.dir/fs/cache_test.cc.o.d"
  "CMakeFiles/test_fs.dir/fs/filesystem_test.cc.o"
  "CMakeFiles/test_fs.dir/fs/filesystem_test.cc.o.d"
  "CMakeFiles/test_fs.dir/fs/fs_pressure_test.cc.o"
  "CMakeFiles/test_fs.dir/fs/fs_pressure_test.cc.o.d"
  "CMakeFiles/test_fs.dir/fs/fs_property_test.cc.o"
  "CMakeFiles/test_fs.dir/fs/fs_property_test.cc.o.d"
  "CMakeFiles/test_fs.dir/fs/lock_manager_test.cc.o"
  "CMakeFiles/test_fs.dir/fs/lock_manager_test.cc.o.d"
  "CMakeFiles/test_fs.dir/fs/store_test.cc.o"
  "CMakeFiles/test_fs.dir/fs/store_test.cc.o.d"
  "test_fs"
  "test_fs.pdb"
  "test_fs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
