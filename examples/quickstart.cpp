// Quickstart: the smallest complete TCIO program.
//
// Eight simulated MPI ranks write interleaved records into one shared file
// with plain POSIX-like calls — no combine buffers, no datatypes, no file
// views — then read them back after a restart. Run it with no arguments.
#include <cstdio>
#include <cstring>
#include <vector>

#include "fs/filesystem.h"
#include "mpi/runtime.h"
#include "tcio/tcio.h"

int main() {
  using namespace tcio;

  // A Lustre-like file system: 30 OSTs, 1 MiB stripes (Lonestar defaults).
  fs::Filesystem fsys(fs::FsConfig{});

  // An 8-rank simulated MPI job.
  mpi::JobConfig job;
  job.num_ranks = 8;

  constexpr int kRecords = 100;
  struct Record {
    std::int32_t step;
    double value;
  };

  std::printf("quickstart: 8 ranks write %d interleaved records each\n",
              kRecords);

  mpi::runJob(job, [&](mpi::Comm& comm) {
    core::TcioConfig cfg;
    cfg.segment_size = 64_KiB;      // lock granularity of the simulated FS
    cfg.segments_per_rank = 16;

    // ---- Dump phase: every rank writes its records, interleaved. --------
    {
      core::File f(comm, fsys, "quickstart.dat", fs::kWrite | fs::kCreate,
                   cfg);
      for (int i = 0; i < kRecords; ++i) {
        const Record rec{i, comm.rank() + i * 0.001};
        const Offset pos =
            (static_cast<Offset>(i) * comm.size() + comm.rank()) *
            static_cast<Offset>(sizeof(Record));
        f.writeAt(pos, &rec, sizeof(Record));
      }
      f.close();  // collective: level-2 buffers drain to the file system
      if (comm.rank() == 0) {
        std::printf("  wrote %lld bytes in %lld level-1 flushes\n",
                    static_cast<long long>(f.stats().bytes_written),
                    static_cast<long long>(f.stats().level1_flushes));
      }
    }

    // ---- Restart phase: read a neighbour's records back. ----------------
    {
      core::File f(comm, fsys, "quickstart.dat", fs::kRead, cfg);
      const int peer = (comm.rank() + 1) % comm.size();
      std::vector<Record> got(kRecords);
      for (int i = 0; i < kRecords; ++i) {
        const Offset pos =
            (static_cast<Offset>(i) * comm.size() + peer) *
            static_cast<Offset>(sizeof(Record));
        f.readAt(pos, &got[static_cast<std::size_t>(i)], sizeof(Record));
      }
      f.fetch();  // lazy reads materialize here
      f.close();
      for (int i = 0; i < kRecords; ++i) {
        const Record& r = got[static_cast<std::size_t>(i)];
        if (r.step != i || r.value != peer + i * 0.001) {
          std::printf("  rank %d: MISMATCH at record %d\n", comm.rank(), i);
          return;
        }
      }
      if (comm.rank() == 0) {
        std::printf("  restart verified: all records match\n");
      }
    }
  });

  std::printf("quickstart: done (simulated file size %lld bytes)\n",
              static_cast<long long>(fsys.peekSize("quickstart.dat")));
  return 0;
}
