// An IOR-style configurable I/O benchmark driver (the paper cites IOR as a
// typical collective-I/O consumer). Runs the interleaved shared-file
// workload through a chosen API on a simulated cluster.
//
// Usage:
//   iorlike [-a tcio|ocio|mpiio] [-p ranks] [-b bytes_per_rank]
//           [-t transfer_size] [-s segment_size] [-r repetitions]
//
// Example:
//   iorlike -a tcio -p 64 -b 1048576 -t 48
#include <cstdio>
#include <cstring>
#include <string>

#include "fs/filesystem.h"
#include "mpi/runtime.h"
#include "workload/synthetic.h"

namespace {

struct Options {
  tcio::workload::Method method = tcio::workload::Method::kTcio;
  int ranks = 16;
  tcio::Bytes bytes_per_rank = 256 * 1024;
  tcio::Bytes transfer = 48;  // bytes per I/O call
  tcio::Bytes segment = 64 * 1024;
  int reps = 1;
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return false;
    }
    const std::string val = argv[++i];
    if (flag == "-a") {
      if (val == "tcio") {
        opt.method = tcio::workload::Method::kTcio;
      } else if (val == "ocio") {
        opt.method = tcio::workload::Method::kOcio;
      } else if (val == "mpiio") {
        opt.method = tcio::workload::Method::kMpiio;
      } else {
        std::fprintf(stderr, "unknown api: %s\n", val.c_str());
        return false;
      }
    } else if (flag == "-p") {
      opt.ranks = std::stoi(val);
    } else if (flag == "-b") {
      opt.bytes_per_rank = std::stoll(val);
    } else if (flag == "-t") {
      opt.transfer = std::stoll(val);
    } else if (flag == "-s") {
      opt.segment = std::stoll(val);
    } else if (flag == "-r") {
      opt.reps = std::stoi(val);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcio;
  Options opt;
  if (!parse(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: iorlike [-a tcio|ocio|mpiio] [-p ranks] [-b "
                 "bytes_per_rank] [-t transfer] [-s segment] [-r reps]\n");
    return 1;
  }

  // Map onto the Table I synthetic workload: one byte-array per process,
  // `transfer` bytes per call, interleaved round-robin.
  workload::BenchmarkConfig cfg;
  cfg.method = opt.method;
  cfg.array_elem_sizes = {1};
  cfg.len_array = opt.bytes_per_rank;
  cfg.size_access = opt.transfer;
  cfg.tcio.segment_size = opt.segment;
  if (cfg.len_array % cfg.size_access != 0) {
    cfg.len_array -= cfg.len_array % cfg.size_access;
  }

  const char* api = opt.method == workload::Method::kTcio    ? "tcio"
                    : opt.method == workload::Method::kOcio ? "ocio"
                                                            : "mpiio";
  std::printf("iorlike: api=%s ranks=%d block=%lld xfer=%lld segment=%lld "
              "reps=%d\n",
              api, opt.ranks, static_cast<long long>(cfg.len_array),
              static_cast<long long>(opt.transfer),
              static_cast<long long>(opt.segment), opt.reps);
  std::printf("%-6s %14s %14s %14s\n", "rep", "write MB/s", "read MB/s",
              "file size");

  for (int rep = 0; rep < opt.reps; ++rep) {
    fs::Filesystem fsys(fs::FsConfig{});
    mpi::JobConfig job;
    job.num_ranks = opt.ranks;
    job.seed = static_cast<std::uint64_t>(rep) + 1;
    double wr = 0, rd = 0;
    Bytes fsize = 0;
    try {
      mpi::runJob(job, [&](mpi::Comm& comm) {
        const auto w = workload::runWritePhase(comm, fsys, cfg);
        const auto r = workload::runReadPhase(comm, fsys, cfg);
        if (comm.rank() == 0) {
          wr = w.throughput_mbps;
          rd = r.throughput_mbps;
          fsize = w.file_size;
        }
      });
    } catch (const Error& e) {
      std::printf("%-6d FAILED: %s\n", rep, e.what());
      continue;
    }
    std::printf("%-6d %14.2f %14.2f %11lld KiB\n", rep, wr, rd,
                static_cast<long long>(fsize / 1024));
  }
  return 0;
}
