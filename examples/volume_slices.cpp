// The SCEC/S3D motivation from the paper's introduction (Fig. 1): a 3D
// computing volume is sliced among processes, but the file stores cells in
// x, y, z order — so each process's slice becomes many small noncontiguous
// blocks with a stride of P slices. With TCIO the application just walks its
// own cells and issues write_at per pencil; the library aggregates.
#include <cstdio>
#include <vector>

#include "fs/filesystem.h"
#include "mpi/runtime.h"
#include "tcio/tcio.h"

int main() {
  using namespace tcio;

  const int P = 8;           // processes = slices in z
  const int NX = 32, NY = 32;  // cells per slice plane
  const int NZ_PER_RANK = 4;   // z-planes per process

  std::printf("volume_slices: %dx%dx%d volume, %d ranks, cell = double\n",
              NX, NY, P * NZ_PER_RANK, P);

  fs::Filesystem fsys(fs::FsConfig{});
  mpi::JobConfig job;
  job.num_ranks = P;

  bool verified = true;
  mpi::runJob(job, [&](mpi::Comm& comm) {
    core::TcioConfig cfg;
    cfg.segment_size = 16_KiB;
    cfg.segments_per_rank = 64;

    // Each rank owns z-planes [rank*NZ, (rank+1)*NZ).
    auto cellValue = [&](int x, int y, int z) {
      return x + 1000.0 * y + 1000000.0 * z;
    };

    {
      core::File f(comm, fsys, "volume.dat", fs::kWrite | fs::kCreate, cfg);
      std::vector<double> pencil(static_cast<std::size_t>(NX));
      for (int zl = 0; zl < NZ_PER_RANK; ++zl) {
        const int z = comm.rank() * NZ_PER_RANK + zl;
        for (int y = 0; y < NY; ++y) {
          for (int x = 0; x < NX; ++x) {
            pencil[static_cast<std::size_t>(x)] = cellValue(x, y, z);
          }
          // File order: offset of cell (0, y, z) in x-fastest layout.
          const Offset off =
              (static_cast<Offset>(z) * NY + y) * NX * 8;
          f.writeAt(off, pencil.data(), NX * 8);
        }
      }
      f.close();
      if (comm.rank() == 0) {
        std::printf("  wrote volume through %lld level-1 flushes\n",
                    static_cast<long long>(f.stats().level1_flushes));
      }
    }

    // Restart with a *different* decomposition: y-slabs instead of z-slabs —
    // the kind of re-partitioning real restarts do.
    {
      core::File f(comm, fsys, "volume.dat", fs::kRead, cfg);
      const int ny_per_rank = NY / P;
      std::vector<double> slab(
          static_cast<std::size_t>(NX * ny_per_rank * P * NZ_PER_RANK));
      std::size_t idx = 0;
      for (int z = 0; z < P * NZ_PER_RANK; ++z) {
        for (int yl = 0; yl < ny_per_rank; ++yl) {
          const int y = comm.rank() * ny_per_rank + yl;
          const Offset off = (static_cast<Offset>(z) * NY + y) * NX * 8;
          f.readAt(off, slab.data() + idx, NX * 8);
          idx += static_cast<std::size_t>(NX);
        }
      }
      f.fetch();
      f.close();
      idx = 0;
      for (int z = 0; z < P * NZ_PER_RANK && verified; ++z) {
        for (int yl = 0; yl < ny_per_rank && verified; ++yl) {
          const int y = comm.rank() * ny_per_rank + yl;
          for (int x = 0; x < NX; ++x) {
            if (slab[idx + static_cast<std::size_t>(x)] !=
                cellValue(x, y, z)) {
              std::printf("  rank %d: mismatch at (%d,%d,%d)\n", comm.rank(),
                          x, y, z);
              verified = false;
              break;
            }
          }
          idx += static_cast<std::size_t>(NX);
        }
      }
    }
  });

  std::printf("volume_slices: %s\n",
              verified ? "re-decomposed restart verified" : "FAILED");
  return verified ? 0 : 1;
}
