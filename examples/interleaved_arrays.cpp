// The paper's running example (Fig. 2 / Programs 2 & 3): each process holds
// an int array and a double array whose elements must interleave round-robin
// in a shared file. Runs the same workload through all three methods and
// prints time, memory, and programming-effort numbers side by side.
#include <cstdio>
#include <string>

#include "fs/filesystem.h"
#include "mpi/runtime.h"
#include "workload/synthetic.h"

int main() {
  using namespace tcio;
  using workload::Method;

  const int P = 16;
  workload::BenchmarkConfig base;
  base.array_elem_sizes = {4, 8};  // TYPEarray = "i,d"
  base.len_array = 32768;          // LENarray
  base.size_access = 1;            // SIZEaccess
  base.tcio.segment_size = 64_KiB;

  std::printf("interleaved_arrays: %d ranks, 2 arrays (int, double), "
              "%lld elements each\n\n",
              P, static_cast<long long>(base.len_array));
  std::printf("%-28s %12s %12s %14s\n", "method", "write MB/s", "read MB/s",
              "peak mem/rank");

  for (const auto& [method, name] :
       {std::pair{Method::kTcio, "TCIO (Program 3)"},
        std::pair{Method::kOcio, "OCIO (Program 2)"},
        std::pair{Method::kMpiio, "vanilla MPI-IO"}}) {
    fs::Filesystem fsys(fs::FsConfig{});
    mpi::JobConfig job;
    job.num_ranks = P;
    workload::BenchmarkConfig cfg = base;
    cfg.method = method;
    double wr = 0, rd = 0;
    Bytes peak = 0;
    mpi::runJob(job, [&](mpi::Comm& comm) {
      const auto w = workload::runWritePhase(comm, fsys, cfg);
      const auto r = workload::runReadPhase(comm, fsys, cfg);
      if (comm.rank() == 0) {
        wr = w.throughput_mbps;
        rd = r.throughput_mbps;
        peak = comm.memory().peak();
      }
    });
    std::printf("%-28s %12.1f %12.1f %11lld KiB\n", name, wr, rd,
                static_cast<long long>(peak / 1024));
  }

  const auto effort = workload::measureProgrammingEffort();
  std::printf("\nprogramming effort (this repository's implementations):\n");
  std::printf("  OCIO  write path: %3d source lines, %2d API calls "
              "(buffer + datatypes + view + collective)\n",
              effort.ocio_lines, effort.ocio_api_calls);
  std::printf("  TCIO  write path: %3d source lines, %2d API calls "
              "(open / write_at / close)\n",
              effort.tcio_lines, effort.tcio_api_calls);
  return 0;
}
