// The ART scenario (paper §V.C): a cell-based AMR cosmology mini-app whose
// fully-threaded trees change shape every step, producing variable-sized,
// many-small-array checkpoints that derived-datatype file views cannot
// describe. TCIO handles them transparently; vanilla per-array MPI-IO pays
// for every tiny write.
#include <cstdio>
#include <vector>

#include "art/checkpoint.h"
#include "fs/filesystem.h"
#include "mpi/runtime.h"

int main() {
  using namespace tcio;

  const int P = 8;
  const std::int64_t kTrees = 64;
  const int kSteps = 3;

  std::printf("amr_checkpoint: %lld FTT trees on %d ranks, %d steps\n",
              static_cast<long long>(kTrees), P, kSteps);

  for (const auto& [backend, name] :
       {std::pair{art::Backend::kTcio, "TCIO"},
        std::pair{art::Backend::kVanillaMpiio, "vanilla MPI-IO"},
        std::pair{art::Backend::kFilePerProcess, "file-per-process"}}) {
    fs::Filesystem fsys(fs::FsConfig{});
    mpi::JobConfig job;
    job.num_ranks = P;
    SimTime dump_time = 0, load_time = 0;
    Bytes file_size = 0;
    std::int64_t arrays = 0;
    mpi::runJob(job, [&](mpi::Comm& comm) {
      art::CheckpointConfig cfg;
      cfg.backend = backend;
      cfg.tcio.segment_size = 64_KiB;

      // Build this rank's trees and run a few "simulation" steps.
      const art::TreeGenConfig gen;
      std::vector<art::FttTree> trees;
      for (auto id : art::treesOfRank(kTrees, comm.rank(), comm.size())) {
        trees.push_back(art::generateTree(/*seed=*/5, id, gen));
      }
      Rng rng(static_cast<std::uint64_t>(comm.rank()) + 1000);
      for (int s = 0; s < kSteps; ++s) {
        for (auto& t : trees) art::advanceTree(t, rng, gen);
      }
      std::int64_t my_arrays = 0;
      for (const auto& t : trees) my_arrays += art::arrayCount(t);
      comm.allreduce(&my_arrays, 1, mpi::ReduceOp::kSum);

      // Checkpoint.
      comm.barrier();
      const SimTime t0 = comm.proc().now();
      art::dumpCheckpoint(comm, fsys, "art.chk", trees, kTrees, cfg);
      comm.barrier();
      const SimTime t1 = comm.proc().now();

      // Restart and verify.
      const auto loaded = art::loadCheckpoint(comm, fsys, "art.chk", cfg);
      comm.barrier();
      const SimTime t2 = comm.proc().now();
      bool ok = loaded.size() == trees.size();
      for (std::size_t i = 0; ok && i < trees.size(); ++i) {
        ok = loaded[i] == trees[i];
      }
      if (!ok) std::printf("  rank %d: RESTART MISMATCH\n", comm.rank());

      if (comm.rank() == 0) {
        dump_time = t1 - t0;
        load_time = t2 - t1;
        arrays = my_arrays;
      }
    });
    file_size = backend == art::Backend::kFilePerProcess
                    ? fsys.peekSize("art.chk.0") * P
                    : fsys.peekSize("art.chk");
    std::printf(
        "  %-16s dump %8.3f s (%7.1f MB/s)   restart %8.3f s (%7.1f MB/s)"
        "   [%lld arrays, %lld bytes]\n",
        name, dump_time,
        static_cast<double>(file_size) / dump_time / 1e6, load_time,
        static_cast<double>(file_size) / load_time / 1e6,
        static_cast<long long>(arrays), static_cast<long long>(file_size));
  }
  std::printf("amr_checkpoint: done\n");
  return 0;
}
